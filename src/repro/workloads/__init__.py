"""Composable algorithm registry: the workloads the pipeline can run.

The execution core (:mod:`repro.pipeline`, :mod:`repro.parallel`,
:mod:`repro.serving`) is generic over a :class:`Workload` — an
algorithm that declares its stages, halo, config schema,
cache-key-relevant parameters and result arrays, and knows how to run
one image through one :class:`~repro.pipeline.Pipeline`.  Five
built-ins register at import:

===========  ===========  ====================================
name         kind         algorithm
===========  ===========  ====================================
``amc``      classify     the paper's morphological classifier
``sam``      detection    spectral-angle target detection
``cem``      detection    constrained-energy-minimization
``rx``       detection    Reed-Xiaoli anomaly detection
``pca``      reduction    principal-component band reduction
===========  ===========  ====================================

(FNNLS unmixing rides inside AMC as ``AMCConfig(unmixing="fnnls")`` —
see :mod:`repro.core.fnnls`.)  Resolution goes through
:func:`get_workload`; comparing workload names with ``==`` anywhere
else in the tree is flagged by the ``workload-dispatch`` reprolint
rule, exactly as ``backend-dispatch`` protects the backend registry.

See ``docs/workloads.md`` for the contract and a worked example of
registering a new algorithm.
"""

from repro.workloads.amc import AMCWorkload
from repro.workloads.base import (
    DEFAULT_EXECUTION_KNOBS,
    Workload,
    run_pixel_kernel,
)
from repro.workloads.detection import (
    DETECTION_STAGE_NAMES,
    CemWorkload,
    DetectionConfig,
    DetectionResult,
    DetectionWorkload,
    RxWorkload,
    SamWorkload,
    sam_scores,
)
from repro.workloads.reduction import (
    REDUCTION_STAGE_NAMES,
    PcaWorkload,
    ProjectStage,
    ReductionConfig,
    ReductionResult,
    project_components,
)
from repro.workloads.registry import (
    get_workload,
    register_workload,
    unregister_workload,
    workload_names,
)

register_workload(AMCWorkload())
register_workload(SamWorkload())
register_workload(CemWorkload())
register_workload(RxWorkload())
register_workload(PcaWorkload())

__all__ = [
    "AMCWorkload",
    "CemWorkload",
    "DEFAULT_EXECUTION_KNOBS",
    "DETECTION_STAGE_NAMES",
    "DetectionConfig",
    "DetectionResult",
    "DetectionWorkload",
    "PcaWorkload",
    "ProjectStage",
    "REDUCTION_STAGE_NAMES",
    "ReductionConfig",
    "ReductionResult",
    "RxWorkload",
    "SamWorkload",
    "Workload",
    "get_workload",
    "project_components",
    "register_workload",
    "run_pixel_kernel",
    "sam_scores",
    "unregister_workload",
    "workload_names",
]
