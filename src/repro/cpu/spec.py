"""CPU device and compiler-build models (paper Table 2).

The timing model is a roofline: a build is either bounded by its
instruction throughput (``clock * flops_per_cycle``) or by memory traffic
over the front-side bus.  The constants encode the well-documented
characteristics of the platforms:

* the gcc 4.0 build is scalar x87/SSE-scalar code; on the NetBurst
  pipeline sustained scalar throughput on pointer-chasing stencil code is
  a fraction of a flop per cycle;
* the icc 9.0 build vectorizes the band loops (4-wide single-precision
  SSE) — but the morphological stage streams ~36 pair-map passes over the
  image, so the vectorized build runs into the FSB long before it runs
  out of ALU, which is why the paper measures only a ~1.6x gcc -> icc
  gain rather than the 4x SIMD width;
* Prescott clocks higher than Northwood but retires fewer instructions
  per cycle (the 31-stage pipeline) and prefetches more aggressively —
  the combination the paper observes as "below 10%" generation-over-
  generation improvement.

=====================  =================  =============
Feature                P4 Northwood M0    Prescott 6x2
=====================  =================  =============
Year                   2003               2005
FSB                    800 MHz, 6.4 GB/s  800 MHz, 6.4 GB/s
L2                     512 KB             2 MB
Clock                  2.8 GHz            3.4 GHz
=====================  =================  =============
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import DeviceError, ValidationError


@dataclass(frozen=True)
class CpuSpec:
    """A simulated CPU platform (paper Table 2 columns)."""

    name: str
    year: int
    clock_hz: float
    fsb_bandwidth: float          # bytes/s
    l2_bytes: int
    memory_bytes: int
    simd_width: int = 4           # single-precision SSE lanes
    #: Fraction of peak FSB bandwidth sustained on streaming reads.
    bandwidth_efficiency: float = 0.70
    #: Scalar (non-vectorized) sustained flops per cycle on stencil code.
    scalar_flops_per_cycle: float = 0.25

    def __post_init__(self) -> None:
        if self.clock_hz <= 0 or self.fsb_bandwidth <= 0:
            raise DeviceError("clock and FSB bandwidth must be positive")
        if not 0 < self.bandwidth_efficiency <= 1:
            raise DeviceError("bandwidth_efficiency must be in (0, 1]")
        if self.simd_width < 1:
            raise DeviceError("simd_width must be >= 1")

    def with_(self, **overrides) -> "CpuSpec":
        """A copy with some fields replaced (for ablations)."""
        return replace(self, **overrides)


@dataclass(frozen=True)
class CompilerModel:
    """How a compiler build uses the hardware.

    Attributes
    ----------
    name:
        "gcc-4.0" / "icc-9.0" (display only).
    vectorized:
        Whether band loops run SIMD-wide.
    simd_efficiency:
        Fraction of the SIMD peak the vectorized inner loops sustain
        (alignment, shuffles, horizontal adds).
    prefetch_gain:
        Multiplier on sustained bandwidth (icc emits software prefetches
        and non-temporal stores).
    """

    name: str
    vectorized: bool
    simd_efficiency: float = 0.75
    prefetch_gain: float = 1.0

    def flops_per_cycle(self, spec: CpuSpec) -> float:
        """Sustained single-precision flops per cycle for this build."""
        if self.vectorized:
            return spec.simd_width * self.simd_efficiency
        return spec.scalar_flops_per_cycle


#: gcc 4.0 -O3 -msse: scalar code (no autovectorization of the SID loops).
GCC40 = CompilerModel(name="gcc-4.0", vectorized=False)

#: icc 9.0 -O3 -tpp7 -restrict -xP: vectorizes the band reductions.
ICC90 = CompilerModel(name="icc-9.0", vectorized=True,
                      simd_efficiency=0.75, prefetch_gain=1.15)


PENTIUM4_NORTHWOOD = CpuSpec(
    name="Pentium 4 (Northwood M0)",
    year=2003,
    clock_hz=2.8e9,
    fsb_bandwidth=6.4e9,
    l2_bytes=512 * 1024,
    memory_bytes=1 * 1024 ** 3,
)

PRESCOTT_660 = CpuSpec(
    name="Prescott (6x2)",
    year=2005,
    clock_hz=3.4e9,
    fsb_bandwidth=6.4e9,
    l2_bytes=2 * 1024 ** 2,
    memory_bytes=2 * 1024 ** 3,
    # Longer pipeline, lower IPC on branchy scalar code; better hardware
    # prefetch makes up some of it on streaming loops.
    scalar_flops_per_cycle=0.22,
    bandwidth_efficiency=0.80,
)


def cpu_time_model(flops: float, traffic_bytes: float, spec: CpuSpec,
                   compiler: CompilerModel) -> dict[str, float]:
    """Roofline time for a workload of ``flops`` and ``traffic_bytes``.

    Returns a dict with ``compute_s``, ``memory_s`` and ``total_s``
    (= max of the two; the NetBurst prefetchers overlap the streams).
    """
    if flops < 0 or traffic_bytes < 0:
        raise ValidationError("flops and traffic_bytes must be >= 0")
    compute_s = flops / (spec.clock_hz * compiler.flops_per_cycle(spec))
    bandwidth = spec.fsb_bandwidth * spec.bandwidth_efficiency \
        * compiler.prefetch_gain
    memory_s = traffic_bytes / bandwidth
    return {"compute_s": compute_s, "memory_s": memory_s,
            "total_s": max(compute_s, memory_s)}
