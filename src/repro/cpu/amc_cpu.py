"""CPU implementations of the AMC morphological stage with timing models.

Two implementations mirror the paper's two compiler builds:

* ``"scalar"`` — the band reductions run one band at a time (an explicit
  Python loop over the spectral axis with 2-D array arithmetic inside),
  the execution order gcc 4.0's scalar code has;
* ``"simd"`` — the band reductions run as whole-axis vector operations
  (``einsum`` over the spectral axis), the order icc 9.0's SSE code has.

Both produce bit-identical results to :func:`repro.core.mei.mei_reference`
(the tests enforce it); they differ in wall-clock behaviour and in which
*build model* prices them.  The modeled milliseconds come from
:func:`repro.core.workload.morphological_workload` priced by
:func:`repro.cpu.spec.cpu_time_model`, independent of this host's Python
overheads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.mei import MorphologicalOutput, se_offsets
from repro.core.pairreuse import gather_mei
from repro.core.shifts import clamped_shift
from repro.core.workload import MorphologicalWorkload, morphological_workload
from repro.cpu.spec import (
    CompilerModel,
    CpuSpec,
    GCC40,
    PENTIUM4_NORTHWOOD,
    cpu_time_model,
)
from repro.errors import ShapeError, ValidationError
from repro.spectral.normalize import normalize_image, safe_log


@dataclass(frozen=True)
class CpuAmcOutput:
    """Morphological result plus the platform/build pricing."""

    morph: MorphologicalOutput
    workload: MorphologicalWorkload
    spec: CpuSpec
    compiler: CompilerModel
    modeled_time_s: float
    compute_time_s: float
    memory_time_s: float


def _pairs_scalar(norm: np.ndarray, log_img: np.ndarray,
                  entropy: np.ndarray, offsets) -> tuple[np.ndarray, dict]:
    """Pair maps with per-band inner loops (the gcc build's structure)."""
    h, w, n = norm.shape
    k_count = len(offsets)
    cumulative = np.zeros((h, w, k_count), dtype=np.float64)
    pair_maps: dict[tuple[int, int], np.ndarray] = {}
    shifted_p = [clamped_shift(norm, dy, dx) for dy, dx in offsets]
    shifted_l = [clamped_shift(log_img, dy, dx) for dy, dx in offsets]
    shifted_h = [clamped_shift(entropy, dy, dx) for dy, dx in offsets]
    for ka in range(k_count):
        for kb in range(ka + 1, k_count):
            cross = np.zeros((h, w), dtype=np.float64)
            for band in range(n):                      # scalar band loop
                cross += shifted_p[ka][:, :, band] * shifted_l[kb][:, :, band]
                cross += shifted_p[kb][:, :, band] * shifted_l[ka][:, :, band]
            sid_map = np.maximum(shifted_h[ka] + shifted_h[kb] - cross, 0.0)
            cumulative[:, :, ka] += sid_map
            cumulative[:, :, kb] += sid_map
            pair_maps[(ka, kb)] = sid_map
    return cumulative, pair_maps


def _pairs_simd(norm: np.ndarray, log_img: np.ndarray,
                entropy: np.ndarray, offsets) -> tuple[np.ndarray, dict]:
    """Pair maps with whole-axis reductions (the icc build's structure)."""
    h, w, _ = norm.shape
    k_count = len(offsets)
    cumulative = np.zeros((h, w, k_count), dtype=np.float64)
    pair_maps: dict[tuple[int, int], np.ndarray] = {}
    shifted_p = [clamped_shift(norm, dy, dx) for dy, dx in offsets]
    shifted_l = [clamped_shift(log_img, dy, dx) for dy, dx in offsets]
    shifted_h = [clamped_shift(entropy, dy, dx) for dy, dx in offsets]
    for ka in range(k_count):
        for kb in range(ka + 1, k_count):
            cross = np.einsum("ijk,ijk->ij", shifted_p[ka], shifted_l[kb]) \
                + np.einsum("ijk,ijk->ij", shifted_p[kb], shifted_l[ka])
            sid_map = np.maximum(shifted_h[ka] + shifted_h[kb] - cross, 0.0)
            cumulative[:, :, ka] += sid_map
            cumulative[:, :, kb] += sid_map
            pair_maps[(ka, kb)] = sid_map
    return cumulative, pair_maps


def cpu_morphological_stage(cube_bip: np.ndarray, radius: int = 1, *,
                            spec: CpuSpec = PENTIUM4_NORTHWOOD,
                            compiler: CompilerModel = GCC40,
                            implementation: str | None = None,
                            ) -> CpuAmcOutput:
    """Run the morphological stage and price it for a platform x build.

    Parameters
    ----------
    cube_bip:
        (H, W, N) raw radiance cube.
    radius:
        SE radius.
    spec / compiler:
        The platform and build model that price the counted work.
    implementation:
        "scalar" or "simd" execution structure; defaults to the structure
        matching the build model (scalar for non-vectorizing compilers).

    Returns
    -------
    CpuAmcOutput
    """
    cube_bip = np.asarray(cube_bip)
    if cube_bip.ndim != 3:
        raise ShapeError(f"expected (H, W, N), got ndim={cube_bip.ndim}")
    if implementation is None:
        implementation = "simd" if compiler.vectorized else "scalar"
    if implementation not in ("scalar", "simd"):
        raise ValidationError(
            f"implementation must be 'scalar' or 'simd', got "
            f"{implementation!r}")

    normalized = normalize_image(cube_bip)
    log_img = safe_log(normalized)
    entropy = (normalized * log_img).sum(axis=-1)
    offsets = se_offsets(radius)

    build = _pairs_scalar if implementation == "scalar" else _pairs_simd
    cumulative, pair_maps = build(normalized, log_img, entropy, offsets)

    erosion_index = np.argmin(cumulative, axis=2)
    dilation_index = np.argmax(cumulative, axis=2)
    k_count = cumulative.shape[2]
    mei, _ = gather_mei(erosion_index, dilation_index,
                        lambda ka, kb: pair_maps[(ka, kb)], k_count)

    morph = MorphologicalOutput(mei=mei, erosion_index=erosion_index,
                                dilation_index=dilation_index,
                                cumulative=cumulative, radius=radius)
    lines, samples, bands = cube_bip.shape
    workload = morphological_workload(lines, samples, bands, radius)
    timing = cpu_time_model(workload.flops, workload.traffic_bytes,
                            spec, compiler)
    return CpuAmcOutput(morph=morph, workload=workload, spec=spec,
                        compiler=compiler,
                        modeled_time_s=timing["total_s"],
                        compute_time_s=timing["compute_s"],
                        memory_time_s=timing["memory_s"])
