"""Virtual CPU baselines (paper Table 2 platforms).

The paper compares its GPU implementation against hand-tuned CPU codes on
a Pentium 4 Northwood (2003) and a Prescott (2005), each built with two
compilers: gcc 4.0 (``-O3 -msse``, scalar in practice) and icc 9.0
(``-O3 -tpp7 -restrict -xP``, auto-vectorized).  This package provides:

* :mod:`~repro.cpu.spec` — CPU descriptions (clock, FSB bandwidth, SIMD
  width) with presets for both processors, and *build* models for the
  two compilers;
* :mod:`~repro.cpu.amc_cpu` — two actual implementations of the AMC
  morphological stage: a scalar per-band loop structured the way the gcc
  build executes, and a SIMD/vectorized one structured the way the icc
  build executes (NumPy's vector ops standing in for SSE);
* a roofline timing model that converts the op/byte counts of the
  morphological stage into modeled milliseconds per platform x build,
  the quantity Tables 4-5 report.
"""

from repro.cpu.amc_cpu import cpu_morphological_stage
from repro.cpu.spec import (
    CompilerModel,
    CpuSpec,
    GCC40,
    ICC90,
    PENTIUM4_NORTHWOOD,
    PRESCOTT_660,
    cpu_time_model,
)

__all__ = [
    "CompilerModel",
    "CpuSpec",
    "GCC40",
    "ICC90",
    "PENTIUM4_NORTHWOOD",
    "PRESCOTT_660",
    "cpu_morphological_stage",
    "cpu_time_model",
]
