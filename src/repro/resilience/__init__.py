"""Fault tolerance for chunked execution: retries, recovery, isolation.

The chunk plan already makes every unit of work independent and
restartable (each chunk carries its own halo); this package cashes that
in when things go wrong: bounded per-task retry
(:class:`~repro.resilience.retry.RetryPolicy`), per-task deadlines and
dead-pool recovery (:mod:`repro.resilience.recovery`), and the error
isolation primitive behind the batch runner's ``on_error`` policies.
All recovery paths produce outputs bit-identical to a fault-free serial
run.  See ``docs/robustness.md``.
"""

from repro.resilience.recovery import collect_async
from repro.resilience.retry import (
    RetryPolicy,
    TaskOutcome,
    run_isolated,
    run_with_retry,
)

__all__ = [
    "RetryPolicy",
    "TaskOutcome",
    "collect_async",
    "run_isolated",
    "run_with_retry",
]
