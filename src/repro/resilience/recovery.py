"""Pool-side result collection with deadlines and loss accounting.

A plain :class:`multiprocessing.pool.Pool` has a failure mode the
stdlib does not surface: when a worker process dies mid-task (crash,
OOM-kill, injected ``os._exit``), the task it was holding is simply
lost — ``pool.map`` blocks forever waiting for a result that will never
arrive, even though the pool's maintenance thread has already replaced
the dead worker.  This module replaces the blocking ``map`` with
per-task async dispatch plus a per-task deadline, and reports exactly
*which* tasks were lost so the caller can recompute only those
(in-process, against the same worker function — bit-identical results).
"""

from __future__ import annotations

from repro.resilience.retry import RetryPolicy, TaskOutcome, run_with_retry


def _pool_task(payload):
    """Worker-side entry: unwrap the payload and run the retry loop.

    Module-level (not a closure) so it pickles by reference into pool
    workers; the payload carries the actual task function.
    """
    func, task, index, policy = payload
    return run_with_retry(func, task, index=index, policy=policy)


def collect_async(pool, func, tasks, policy: RetryPolicy):
    """Dispatch ``func`` over ``tasks`` on ``pool``; collect what survives.

    Every task is submitted with ``apply_async`` and collected with the
    policy's per-task deadline.  Returns ``(outcomes, failures)`` where
    ``outcomes`` maps task index to :class:`TaskOutcome` and
    ``failures`` maps the indices that produced no result to the
    exception that explains why (``multiprocessing.TimeoutError`` for a
    lost/stalled task, or whatever the worker raised).  Nothing is
    raised from here — routing *every* failure to the caller's
    in-process recovery gives genuine errors a clean parent-side
    traceback and transient ones a second life, through one code path.
    """
    handles = [pool.apply_async(_pool_task, ((func, task, index, policy),))
               for index, task in enumerate(tasks)]
    outcomes: dict[int, TaskOutcome] = {}
    failures: dict[int, BaseException] = {}
    for index, handle in enumerate(handles):
        try:
            outcomes[index] = handle.get(policy.chunk_timeout_s)
        except Exception as exc:
            failures[index] = exc
    return outcomes, failures
