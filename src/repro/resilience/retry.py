"""Bounded retry and error isolation primitives.

The primitives here are deliberately tiny — a policy record, a retry
loop, an isolation wrapper — because the *semantics* doing the heavy
lifting live elsewhere: chunk independence (every chunk carries its own
halo) is what makes re-running one task safe, and the stitching layer's
bit-identical guarantee is what makes it *correct*.

This package is also the only place in the codebase allowed to contain
blanket ``except`` clauses (reprolint's ``blanket-except`` rule —
``python -m tools.reprolint --rules blanket-except`` — enforces it):
swallowing arbitrary exceptions is exactly the resilience layer's job
and nobody else's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import faults
from repro.errors import StreamError, TransientFaultError


@dataclass(frozen=True)
class RetryPolicy:
    """How much failure one task dispatch is allowed to absorb.

    Attributes
    ----------
    max_retries:
        Extra attempts after the first, per task (0 = one attempt).
        Applies worker-side in pools and in-process on the serial path.
    chunk_timeout_s:
        Per-task deadline when collecting pool results.  ``None`` (the
        default) waits forever — which also means a worker that *dies*
        mid-task can never be detected, because a plain
        ``multiprocessing.Pool`` silently drops the in-flight task;
        crash recovery therefore requires a finite deadline.
    retryable:
        Exception classes the retry loop absorbs.  Anything else
        propagates immediately — a ``ShapeError`` will not get better
        on attempt two.
    """

    max_retries: int = 0
    chunk_timeout_s: float | None = None
    retryable: tuple[type[BaseException], ...] = (TransientFaultError,)

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise StreamError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.chunk_timeout_s is not None and self.chunk_timeout_s <= 0:
            raise StreamError(
                f"chunk_timeout_s must be positive, got "
                f"{self.chunk_timeout_s}")


@dataclass(frozen=True)
class TaskOutcome:
    """One task's successful result plus how much failure it cost.

    Attributes
    ----------
    value:
        Whatever the task function returned.
    retries:
        Attempts beyond the first this task consumed (including a lost
        pool attempt when the task was recovered in-process).
    recovered:
        True when the recorded attempt ran in the parent process after
        the pool lost or failed the task.
    """

    value: object
    retries: int = 0
    recovered: bool = False


def run_with_retry(func, task, *, index: int | None = None,
                   policy: RetryPolicy = RetryPolicy(),
                   attempt_base: int = 0) -> TaskOutcome:
    """Run ``func(task)`` with the policy's bounded retry loop.

    Each attempt is numbered ``attempt_base + n`` and published through
    :func:`repro.faults.set_attempt` so injected faults can key on it.
    Recovery paths pass ``attempt_base > policy.max_retries`` — their
    attempt numbers are disjoint from any worker attempt, so a fault
    pinned to attempt 0 can never re-fire in the parent process (where
    an injected ``os._exit`` would kill the whole run, not one worker).

    Only ``policy.retryable`` exceptions are absorbed; the last one is
    re-raised when attempts run out.
    """
    last: BaseException | None = None
    for attempt in range(policy.max_retries + 1):
        faults.set_attempt(attempt_base + attempt)
        try:
            try:
                value = func(task)
            finally:
                faults.set_attempt(0)
        except policy.retryable as exc:
            last = exc
            continue
        return TaskOutcome(value, retries=attempt)
    assert last is not None
    raise last


def run_isolated(func, *args, **kwargs):
    """Run ``func(*args, **kwargs)``, capturing any exception.

    Returns ``(value, None)`` on success, ``(None, exception)`` on any
    :class:`Exception` — the error-isolation primitive behind the batch
    runner's ``on_error`` policies.  ``BaseException`` (keyboard
    interrupt, ``SystemExit``) still propagates.
    """
    try:
        return func(*args, **kwargs), None
    except Exception as exc:
        return None, exc
