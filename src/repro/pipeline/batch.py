"""Batch AMC: many cubes through one pipeline / one worker pool.

The first consumer the monolithic ``run_amc`` could not support: a
sensor downlink (or a load test) hands over *many* scenes, and spinning
a fresh pipeline — or worse, a fresh process pool — per cube wastes the
setup cost ``run_amc`` pays once.  :func:`run_amc_batch` amortizes
both:

* ``config.n_workers == 1`` — one :class:`~repro.pipeline.Pipeline`
  instance (and the kernel caches it warms) is reused across every
  cube, sequentially;
* ``config.n_workers != 1`` — one process pool serves the whole batch,
  one task per cube; each worker builds its pipeline once (pool
  initializer) and reuses it for every cube it is handed.  Workers run
  the serial per-cube path — chunk- and batch-level parallelism do not
  nest — which is bit-identical to chunk-parallel execution anyway.

Either way the results are exactly what per-cube
:func:`~repro.core.amc.run_amc` calls would produce (the batch test
pins this).
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.amc import AMCConfig, AMCResult, _as_bip
from repro.pipeline.amc import build_amc_pipeline, execute_amc
from repro.profiling.profiler import Profiler

# Worker-side state (see repro.parallel.pool for the pattern).
_STATE: dict = {}


def _init_batch_worker(config: AMCConfig, class_names, bips,
                       ground_truths) -> None:
    # The bips ride in the initializer — not the task queue — so fork
    # inherits them with their memory layout intact; pickling through
    # the queue would force them C-contiguous, and numpy's pairwise
    # summation is layout-sensitive at the last bit.
    _STATE["config"] = config
    _STATE["class_names"] = class_names
    _STATE["bips"] = bips
    _STATE["ground_truths"] = ground_truths
    _STATE["pipeline"] = build_amc_pipeline()


def _run_batch_cube(index):
    """Run one cube through the worker's long-lived pipeline."""
    result = execute_amc(_STATE["bips"][index], _STATE["config"],
                         ground_truth=_STATE["ground_truths"][index],
                         class_names=_STATE["class_names"],
                         pipeline=_STATE["pipeline"])
    return index, result


def run_amc_batch(cubes, config: AMCConfig = AMCConfig(), *,
                  ground_truths=None, class_names=None,
                  profiler: Profiler | None = None) -> list[AMCResult]:
    """Run AMC over a sequence of cubes, reusing pipeline and pool.

    Parameters
    ----------
    cubes:
        Sequence of :class:`~repro.hsi.cube.HyperCube` / (H, W, N)
        arrays (shapes may differ between cubes).
    config:
        One configuration applied to every cube.  ``n_workers != 1``
        parallelizes *across cubes* through a single process pool kept
        for the whole batch.
    ground_truths:
        Optional sequence of per-cube (H, W) label maps (``None``
        entries allowed), same length as ``cubes``.
    class_names:
        Shared class names for the reports.
    profiler:
        Optional profiler; on the sequential path it receives the five
        stage records per cube, in batch order.  The pool path keeps
        its records worker-side and records nothing.

    Returns
    -------
    list of :class:`~repro.core.amc.AMCResult`, one per cube, in input
    order — each equal to an independent ``run_amc(cube, config)``
    call.
    """
    cubes = list(cubes)
    if ground_truths is None:
        ground_truths = [None] * len(cubes)
    else:
        ground_truths = list(ground_truths)
        if len(ground_truths) != len(cubes):
            raise ValueError(
                f"got {len(cubes)} cubes but {len(ground_truths)} ground "
                f"truths")
    bips = [_as_bip(cube) for cube in cubes]

    if config.n_workers != 1 and len(bips) > 1:
        # import deferred: repro.parallel sits above repro.core but
        # below this package; the pool machinery is shared.
        from repro.parallel.pool import resolve_workers, run_tasks

        serial_config = replace(config, n_workers=1)
        results = run_tasks(range(len(bips)), _run_batch_cube,
                            _init_batch_worker,
                            (serial_config, class_names, bips,
                             ground_truths),
                            resolve_workers(config.n_workers),
                            state=_STATE)
        ordered: list[AMCResult | None] = [None] * len(bips)
        for index, result in results:
            # restore the caller's config (workers ran n_workers=1)
            ordered[index] = replace(result, config=config)
        return ordered

    pipeline = build_amc_pipeline()
    return [execute_amc(bip, config, ground_truth=gt,
                        class_names=class_names, profiler=profiler,
                        pipeline=pipeline)
            for bip, gt in zip(bips, ground_truths)]
