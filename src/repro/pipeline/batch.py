"""Batch AMC: many cubes through one pipeline / one worker pool.

The first consumer the monolithic ``run_amc`` could not support: a
sensor downlink (or a load test) hands over *many* scenes, and spinning
a fresh pipeline — or worse, a fresh process pool — per cube wastes the
setup cost ``run_amc`` pays once.  :func:`run_amc_batch` amortizes
both:

* ``config.n_workers == 1`` — one :class:`~repro.pipeline.Pipeline`
  instance (and the kernel caches it warms) is reused across every
  cube, sequentially;
* ``config.n_workers != 1`` — one process pool serves the whole batch,
  one task per cube; each worker builds its pipeline once (pool
  initializer) and reuses it for every cube it is handed.  Workers run
  the serial per-cube path — chunk- and batch-level parallelism do not
  nest — which is bit-identical to chunk-parallel execution anyway.

Either way the results are exactly what per-cube
:func:`~repro.core.amc.run_amc` calls would produce (the batch test
pins this).

Error isolation: one corrupt scene must not kill a downlink batch, so
every cube runs isolated (:func:`repro.resilience.run_isolated` — on
both the sequential and the pool path) and the ``on_error`` policy
decides what a failure means: ``"raise"`` (the default) re-raises the
first failing cube's exception, ``"skip"`` drops failed cubes from the
result list, ``"collect"`` keeps one entry per cube — the
:class:`~repro.core.amc.AMCResult` or a :class:`BatchItemError`
wrapping the exception.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.amc import AMCConfig, AMCResult, _as_bip
from repro.errors import ValidationError
from repro.faults import maybe_inject
from repro.pipeline.amc import build_amc_pipeline, execute_amc
from repro.profiling.profiler import Profiler
from repro.resilience import run_isolated

#: The accepted ``on_error`` policies.
ON_ERROR_POLICIES = ("raise", "skip", "collect")


@dataclass(frozen=True)
class BatchItemError:
    """One failed cube of a batch run (``on_error="collect"``).

    Attributes
    ----------
    index:
        The cube's position in the input sequence.
    error:
        The exception that cube's AMC run raised.
    """

    index: int
    error: Exception

    def __str__(self) -> str:
        return (f"cube {self.index} failed: "
                f"{type(self.error).__name__}: {self.error}")


# Worker-side state (see repro.parallel.pool for the pattern).
_STATE: dict = {}


def _init_batch_worker(config: AMCConfig, class_names, bips,
                       ground_truths) -> None:
    # The bips ride in the initializer — not the task queue — so fork
    # inherits them with their memory layout intact; pickling through
    # the queue would force them C-contiguous, and numpy's pairwise
    # summation is layout-sensitive at the last bit.
    _STATE["config"] = config
    _STATE["class_names"] = class_names
    _STATE["bips"] = bips
    _STATE["ground_truths"] = ground_truths
    _STATE["pipeline"] = build_amc_pipeline()


def _compute_batch_cube(index, profiler: Profiler | None = None):
    maybe_inject("cube", index=index)
    return execute_amc(_STATE["bips"][index], _STATE["config"],
                       ground_truth=_STATE["ground_truths"][index],
                       class_names=_STATE["class_names"],
                       profiler=profiler,
                       pipeline=_STATE["pipeline"])


def _run_batch_cube(index):
    """Run one cube through the worker's long-lived pipeline, isolated.

    Failures are *returned*, not raised — ``(index, result, error)`` —
    so the parent can apply the ``on_error`` policy; an exception
    crossing the pool boundary would otherwise abort result collection
    for every cube behind it.
    """
    result, error = run_isolated(_compute_batch_cube, index)
    return index, result, error


def _apply_on_error(items, on_error: str, config: AMCConfig,
                    profiler: Profiler | None):
    """Turn (index, result, error) triples into the caller's result list."""
    results: list[AMCResult | BatchItemError] = []
    for index, result, error in items:
        if error is None:
            # restore the caller's config (workers ran n_workers=1)
            results.append(replace(result, config=config))
            continue
        if on_error == "raise":
            raise error
        if profiler is not None:
            profiler.record_event(
                "batch_error", f"{type(error).__name__}: {error}",
                chunk_index=index)
        if on_error == "collect":
            results.append(BatchItemError(index, error))
    return results


def run_amc_batch(cubes, config: AMCConfig = AMCConfig(), *,
                  ground_truths=None, class_names=None,
                  profiler: Profiler | None = None,
                  on_error: str = "raise"
                  ) -> list[AMCResult | BatchItemError]:
    """Run AMC over a sequence of cubes, reusing pipeline and pool.

    Parameters
    ----------
    cubes:
        Sequence of :class:`~repro.hsi.cube.HyperCube` / (H, W, N)
        arrays (shapes may differ between cubes).
    config:
        One configuration applied to every cube.  ``n_workers != 1``
        parallelizes *across cubes* through a single process pool kept
        for the whole batch.
    ground_truths:
        Optional sequence of per-cube (H, W) label maps (``None``
        entries allowed), same length as ``cubes``.
    class_names:
        Shared class names for the reports.
    profiler:
        Optional profiler; on the sequential path it receives the five
        stage records per cube, in batch order.  The pool path keeps
        its stage records worker-side and records nothing — but
        ``"batch_error"`` and pool-recovery events are recorded on
        every path.
    on_error:
        Per-cube failure policy — ``"raise"`` re-raises the first
        failing cube's exception (the historical behavior), ``"skip"``
        omits failed cubes from the result list, ``"collect"`` returns
        a :class:`BatchItemError` in the failed cube's position.

    Returns
    -------
    list of :class:`~repro.core.amc.AMCResult` (one per cube, in input
    order — each equal to an independent ``run_amc(cube, config)``
    call), with failed cubes dropped (``"skip"``) or represented by
    :class:`BatchItemError` entries (``"collect"``).
    """
    if on_error not in ON_ERROR_POLICIES:
        raise ValidationError(f"on_error must be one of {ON_ERROR_POLICIES}, "
                         f"got {on_error!r}")
    cubes = list(cubes)
    if ground_truths is None:
        ground_truths = [None] * len(cubes)
    else:
        ground_truths = list(ground_truths)
        if len(ground_truths) != len(cubes):
            raise ValidationError(
                f"got {len(cubes)} cubes but {len(ground_truths)} ground "
                f"truths")
    bips = [_as_bip(cube) for cube in cubes]

    if config.n_workers != 1 and len(bips) > 1:
        # import deferred: repro.parallel sits above repro.core but
        # below this package; the pool machinery is shared.
        from repro.parallel.pool import resolve_workers, run_tasks
        from repro.resilience import RetryPolicy

        serial_config = replace(config, n_workers=1)
        policy = RetryPolicy(max_retries=config.max_retries,
                             chunk_timeout_s=config.chunk_timeout_s)
        outcomes = run_tasks(range(len(bips)), _run_batch_cube,
                             _init_batch_worker,
                             (serial_config, class_names, bips,
                              ground_truths),
                             resolve_workers(config.n_workers),
                             state=_STATE, policy=policy,
                             profiler=profiler)
        items = sorted((outcome.value for outcome in outcomes),
                       key=lambda item: item[0])
        return _apply_on_error(items, on_error, config, profiler)

    _init_batch_worker(config, class_names, bips, ground_truths)
    try:
        items = [(index, *run_isolated(_compute_batch_cube, index, profiler))
                 for index in range(len(bips))]
        return _apply_on_error(items, on_error, config, profiler)
    finally:
        _STATE.clear()
