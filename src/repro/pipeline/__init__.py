"""AMC as a composable stage pipeline.

The algorithm the paper stages as fixed phases (Fig. 4: upload →
normalize → cumulative SID → min/max → MEI → download, then the host
tail) is expressed here as data: five :class:`Stage` objects executed
in order by a :class:`Pipeline` runner over a shared context dict.  The
runner — not the stages — owns profiling and GPU-accounting
aggregation, so every execution path emits the same five stage records
and the same counter summaries.

:func:`repro.core.amc.run_amc` is a thin façade over
:func:`execute_amc`; :func:`run_amc_batch` is the first consumer the
monolithic shape could not support — many cubes through one reused
pipeline (and, with ``n_workers != 1``, one process pool for the whole
batch).  Morphological implementations are resolved through
:mod:`repro.backends`, never by string comparison.
"""

from repro.pipeline.amc import (
    AMC_STAGE_NAMES,
    build_amc_pipeline,
    check_finite_cube,
    execute_amc,
)
from repro.pipeline.batch import (
    ON_ERROR_POLICIES,
    BatchItemError,
    run_amc_batch,
)
from repro.pipeline.runner import Pipeline
from repro.pipeline.stages import (
    ClassificationStage,
    EndmemberStage,
    EvaluationStage,
    MorphologyStage,
    Stage,
    UnmixingStage,
)

__all__ = [
    "AMC_STAGE_NAMES",
    "BatchItemError",
    "ClassificationStage",
    "EndmemberStage",
    "EvaluationStage",
    "MorphologyStage",
    "ON_ERROR_POLICIES",
    "Pipeline",
    "Stage",
    "UnmixingStage",
    "build_amc_pipeline",
    "check_finite_cube",
    "execute_amc",
    "run_amc_batch",
]
