"""The standard AMC pipeline and its executor facade.

:func:`build_amc_pipeline` composes the five canonical stages;
:func:`execute_amc` — historically the executor body, now a thin
facade over ``get_workload("amc").run(...)`` (see
:class:`repro.workloads.AMCWorkload`, where the body lives) — runs one
image through a pipeline and assembles the
:class:`~repro.core.amc.AMCResult`.  :func:`repro.core.amc.run_amc`
delegates here; both keep their exact historical signatures and
bit-identical results (golden-pinned by the pipeline suite), so
callers never notice the execution core went workload-generic.
"""

from __future__ import annotations

import numpy as np

from repro.core.amc import AMCConfig, AMCResult
from repro.errors import NonFiniteInputError
from repro.pipeline.runner import Pipeline
from repro.pipeline.stages import (
    ClassificationStage,
    EndmemberStage,
    EvaluationStage,
    MorphologyStage,
    UnmixingStage,
)
from repro.profiling.profiler import Profiler

#: The five canonical AMC stage labels, in execution order — also the
#: stage records a profiled run emits, on every path.
AMC_STAGE_NAMES = ("morphology", "endmembers", "unmixing",
                   "classification", "evaluation")


def check_finite_cube(bip: np.ndarray) -> np.ndarray:
    """Reject cubes containing NaN or infinity, naming the first one.

    A non-finite radiance value would otherwise slip through per-pixel
    normalization (which only guards the scalar brightness) and poison
    every SID computed downstream — silently, as more NaN.  Returns the
    validated array unchanged.
    """
    bip = np.asarray(bip)
    if not np.isfinite(bip).all():
        where = np.argwhere(~np.isfinite(bip))[0]
        if bip.ndim == 3:
            line, sample, band = (int(v) for v in where)
            value = bip[line, sample, band]
            location = (f"pixel (line={line}, sample={sample}), "
                        f"band {band}")
        else:  # pragma: no cover - non-3D cubes fail shape checks later
            value = bip[tuple(where)]
            location = f"index {tuple(int(v) for v in where)}"
        raise NonFiniteInputError(
            f"input cube contains non-finite values: first is {value!r} "
            f"at {location}")
    return bip


def build_amc_pipeline() -> Pipeline:
    """The canonical five-stage AMC pipeline (paper §3.1 + evaluation)."""
    return Pipeline((MorphologyStage(), EndmemberStage(), UnmixingStage(),
                     ClassificationStage(), EvaluationStage()))


def execute_amc(bip, config: AMCConfig, *,
                ground_truth=None, class_names=None,
                profiler: Profiler | None = None,
                pipeline: Pipeline | None = None) -> AMCResult:
    """Run one (H, W, N) image through an AMC pipeline.

    Parameters mirror :func:`repro.core.amc.run_amc` (which delegates
    here); ``pipeline`` lets a caller supply a prebuilt — possibly
    customized — pipeline, e.g. to amortize construction across a
    batch.
    """
    # import deferred: repro.workloads composes this module (it needs
    # build_amc_pipeline and check_finite_cube), so the facade resolves
    # its registry entry lazily.
    from repro.workloads import get_workload

    return get_workload("amc").run(bip, config, ground_truth=ground_truth,
                                   class_names=class_names,
                                   profiler=profiler, pipeline=pipeline)
