"""AMC as composable pipeline stages.

Each :class:`Stage` is one named step of the algorithm (the names are
exactly the five stage records ``run_amc`` has always profiled:
``morphology``, ``endmembers``, ``unmixing``, ``classification``,
``evaluation``).  Stages communicate through a shared context dict; the
:class:`~repro.pipeline.runner.Pipeline` runner owns the profiling
spans, so every path — host tail, device tail, chunk-parallel — emits
all five records.

Context keys (set by the caller): ``bip`` (H, W, N float array),
``config`` (:class:`~repro.core.amc.AMCConfig`), ``backend`` (a resolved
:class:`~repro.backends.MorphologicalBackend`), ``ground_truth``,
``class_names``, ``profiler``.  Stages add: ``mei``, ``erosion_index``,
``dilation_index``, ``gpu_output``, ``device``, ``endmembers``,
``abundances``, ``winner``, ``endmember_labels``, ``labels``,
``report``.
"""

from __future__ import annotations

import numpy as np

from repro.core.endmembers import (
    dilation_candidates,
    select_endmembers,
    smooth_cube,
)
from repro.core.metrics import (
    evaluate_classification,
    map_endmembers_to_classes,
)
from repro.core.unmix_gpu import gpu_unmix_classify
from repro.core.unmixing import UNMIXERS, classify_abundances
from repro.errors import ShapeError


class Stage:
    """One named, profiled step of a :class:`~repro.pipeline.Pipeline`.

    Subclasses set :attr:`name` (the profiler's stage-record label) and
    implement :meth:`run`, which reads and writes the shared context
    dict.
    """

    #: Stage-record label the pipeline runner profiles this stage under.
    name: str = "stage"

    def run(self, ctx: dict) -> None:
        """Execute the stage against the shared context."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class MorphologyStage(Stage):
    """Steps 1-2: morphological stage → MEI + erosion/dilation indices.

    Serial runs go straight through the backend adapter; with
    ``config.n_workers != 1`` the image is split into halo-carrying line
    chunks executed by the worker pool (bit-identical to serial).
    """

    name = "morphology"

    def run(self, ctx: dict) -> None:
        config, bip, backend = ctx["config"], ctx["bip"], ctx["backend"]
        device = None
        if config.n_workers != 1:
            # import deferred: repro.parallel sits above this package
            from repro.parallel import parallel_morphological_stage
            from repro.resilience import RetryPolicy

            policy = RetryPolicy(max_retries=config.max_retries,
                                 chunk_timeout_s=config.chunk_timeout_s)
            mei, ero, dil, gpu_output = parallel_morphological_stage(
                bip, config.se_radius, backend=backend,
                n_workers=config.n_workers, gpu_spec=config.gpu_spec,
                profiler=ctx.get("profiler"), policy=policy)
            mei = mei.astype(np.float64)
        else:
            res = backend.run(bip, config.se_radius, spec=config.gpu_spec)
            mei, ero, dil = (res.mei, res.erosion_index,
                             res.dilation_index)
            gpu_output, device = res.accounting, res.device
            profiler = ctx.get("profiler")
            if profiler is not None and res.stats is not None:
                # Shift-reuse accounting of the morphological stage —
                # attached to this stage's record when the span closes.
                profiler.record_stage_counters(self.name, res.stats)
        profiler = ctx.get("profiler")
        if profiler is not None and gpu_output is not None:
            # Pass-fusion accounting of the device path (summed across
            # workers by stitched_accounting on parallel runs).
            summary = gpu_output.counters
            profiler.record_stage_counters(self.name, {
                key: summary[key]
                for key in ("passes_fused", "temporaries_elided")
                if key in summary})
        ctx.update(mei=mei, erosion_index=ero, dilation_index=dil,
                   gpu_output=gpu_output, device=device)


class EndmemberStage(Stage):
    """Step 3a: select the c most spectrally pure, diverse pixels."""

    name = "endmembers"

    def run(self, ctx: dict) -> None:
        config, bip = ctx["config"], ctx["bip"]
        candidates = None
        if config.endmember_source == "dilation":
            candidates = dilation_candidates(ctx["mei"],
                                             ctx["dilation_index"],
                                             config.se_radius)
        ctx["endmembers"] = select_endmembers(
            bip, ctx["mei"], config.n_classes,
            strategy=config.endmember_strategy,
            min_sid=config.endmember_min_sid,
            min_spatial=config.endmember_min_spatial,
            candidates=candidates,
            smooth_radius=config.endmember_smooth_radius)


class UnmixingStage(Stage):
    """Step 3b: linear spectral unmixing → per-pixel abundances.

    With ``config.gpu_unmixing`` on a backend that supports a device
    tail, unmixing (and the argmax the device computes alongside it)
    runs on the virtual board — reusing the morphological stage's
    device when it is live, so one counter set covers the whole
    algorithm; otherwise the accounting of a fresh tail board is summed
    in.  Both aggregations go through
    :meth:`~repro.core.amc_gpu.GpuAmcOutput.with_accounting`.
    """

    name = "unmixing"

    def run(self, ctx: dict) -> None:
        config, bip, backend = ctx["config"], ctx["bip"], ctx["backend"]
        endmembers = ctx["endmembers"]
        if config.gpu_unmixing and backend.supports_device_unmixing:
            device = ctx["device"]
            shared = device is not None
            if device is None:
                # the morphological stage ran on per-worker boards; the
                # tail gets its own device and the accounting is summed
                from repro.gpu.device import VirtualGPU

                device = VirtualGPU(config.gpu_spec,
                                    optimize=config.optimize)
            unmix_out = gpu_unmix_classify(bip, endmembers.spectra,
                                           device=device,
                                           return_abundances=True)
            ctx["gpu_output"] = ctx["gpu_output"].with_accounting(
                device.counters, add=not shared)
            ctx["abundances"] = unmix_out.abundances.astype(np.float64)
            ctx["device_winner"] = unmix_out.winner_index
        else:
            pixels = smooth_cube(bip, config.classify_smooth_radius) \
                if config.classify_smooth_radius > 0 else bip
            ctx["abundances"] = UNMIXERS[config.unmixing](
                pixels, endmembers.spectra)


class ClassificationStage(Stage):
    """Step 4: argmax abundance → 0-based winner endmember index.

    When the device tail already computed the argmax, this stage just
    adopts it — but the stage (and its profiling record) exists on
    every path.
    """

    name = "classification"

    def run(self, ctx: dict) -> None:
        winner = ctx.pop("device_winner", None)
        if winner is None:
            winner = classify_abundances(ctx["abundances"])
        ctx["winner"] = winner


class EvaluationStage(Stage):
    """Map endmembers to ground-truth classes and score the result."""

    name = "evaluation"

    def run(self, ctx: dict) -> None:
        config, bip = ctx["config"], ctx["bip"]
        winner = ctx["winner"]
        ground_truth = ctx.get("ground_truth")
        endmember_labels = None
        report = None
        if ground_truth is not None:
            ground_truth = np.asarray(ground_truth)
            if ground_truth.shape != bip.shape[:2]:
                raise ShapeError(
                    f"ground truth {ground_truth.shape} does not match "
                    f"image {bip.shape[:2]}")
            endmember_labels = map_endmembers_to_classes(
                ctx["endmembers"].positions, ground_truth)
            if config.label_mapping == "majority":
                for k in range(config.n_classes):
                    assigned = ground_truth[winner == k]
                    assigned = assigned[assigned >= 1]
                    if assigned.size:
                        values, counts = np.unique(assigned,
                                                   return_counts=True)
                        endmember_labels[k] = values[np.argmax(counts)]
            labels = endmember_labels[winner]
            n_classes = int(ground_truth.max())
            class_names = ctx.get("class_names")
            if class_names is None:
                class_names = tuple(f"class-{i + 1}"
                                    for i in range(n_classes))
            report = evaluate_classification(ground_truth, labels,
                                             class_names)
        else:
            labels = winner + 1
        ctx.update(endmember_labels=endmember_labels, labels=labels,
                   report=report)
