"""The pipeline runner: ordered stages over a shared context.

A :class:`Pipeline` is just a tuple of
:class:`~repro.pipeline.stages.Stage` objects; :meth:`Pipeline.run`
executes them in order against one context dict, wrapping every stage
in a profiling span — the runner, not the stages, owns profiling, which
is what guarantees that *every* execution path emits the same stage
records (the pre-pipeline ``run_amc`` dropped the ``classification``
record on the device-unmixing path).
"""

from __future__ import annotations

from repro.errors import ValidationError
from repro.profiling.profiler import Profiler, profiled_stage


class Pipeline:
    """An ordered, profiled sequence of stages.

    Pipelines are stateless between runs (all per-run state lives in
    the context dict), so one instance can be reused across many inputs
    — :func:`~repro.pipeline.batch.run_amc_batch` does exactly that.
    """

    def __init__(self, stages) -> None:
        self.stages = tuple(stages)
        if not self.stages:
            raise ValidationError("a Pipeline needs at least one stage")
        #: Completed executions of this instance.  Pure accounting — no
        #: per-run state survives here — but it is the ground truth the
        #: serving layer's dedup guarantees are verified against ("a
        #: duplicate submission performs zero pipeline executions").
        self.run_count = 0

    @property
    def stage_names(self) -> tuple[str, ...]:
        """The stage labels, in execution order."""
        return tuple(stage.name for stage in self.stages)

    def run(self, ctx: dict, *, profiler: Profiler | None = None) -> dict:
        """Run every stage in order; returns the (mutated) context.

        Each stage executes inside ``profiler.stage(stage.name)``, so a
        profiled run always yields exactly one record per stage, in
        pipeline order.  The profiler is also placed into the context
        (key ``"profiler"``) for stages that forward it to executors
        (chunk records).
        """
        ctx.setdefault("profiler", profiler)
        for stage in self.stages:
            with profiled_stage(profiler, stage.name):
                stage.run(ctx)
        self.run_count += 1
        return ctx

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Pipeline({', '.join(self.stage_names)})"
