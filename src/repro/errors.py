"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish configuration problems from resource
exhaustion in the simulated devices.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ShapeError(ReproError, ValueError):
    """An array argument has the wrong number of dimensions or extents."""


class LayoutError(ReproError, ValueError):
    """An unknown or incompatible hyperspectral memory layout was requested."""


class ShaderError(ReproError):
    """A fragment shader program failed validation or execution."""


class ShaderValidationError(ShaderError, ValueError):
    """A shader IR tree is structurally invalid (bad arity, unbound register,
    unknown sampler, type mismatch)."""


class GpuOutOfMemoryError(ReproError, MemoryError):
    """The virtual GPU's VRAM allocator could not satisfy an allocation."""


class StreamError(ReproError):
    """Misuse of the stream programming abstractions (unbound stream,
    mismatched shapes between kernel inputs, cyclic stage graphs...)."""


class DeviceError(ReproError):
    """A virtual device (GPU or CPU model) was configured inconsistently."""


class UnknownBackendError(StreamError, ValueError):
    """A morphological backend name is not in the registry.

    Subclasses both :class:`StreamError` (backends are execution
    substrates of the stream decomposition) and :class:`ValueError`
    (callers that validate configuration catch it as a plain value
    problem).  The message always lists the registered names."""


class EnviFormatError(ReproError, ValueError):
    """An ENVI-style header could not be parsed or describes an unsupported
    interleave/dtype combination."""
