"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish configuration problems from resource
exhaustion in the simulated devices.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An argument or configuration value is out of range or unrecognized.

    The library-wide replacement for a bare ``raise ValueError``: every
    raise under :mod:`repro` must derive from :class:`ReproError` (the
    ``raise-contract`` lint enforces it), and subclassing
    :class:`ValueError` keeps callers that validate configuration
    catching the failure as a plain value problem."""


class ShapeError(ReproError, ValueError):
    """An array argument has the wrong number of dimensions or extents."""


class RegistryTypeError(ReproError, TypeError):
    """An object offered to a registry (backends, workloads) is not an
    instance of the contract class.

    Subclasses :class:`TypeError` because the failure is a wrong-type
    argument in the plain Python sense; deriving from
    :class:`ReproError` keeps the raise-contract intact."""


class MaterialNotFoundError(ReproError, KeyError):
    """A material name is not in the spectral library.

    Subclasses :class:`KeyError` because the library is a mapping and
    callers that treat it as one should catch the miss as a plain
    lookup failure."""

    def __str__(self) -> str:
        # KeyError.__str__ repr()s the message; keep it readable.
        return Exception.__str__(self)


class BandRangeError(ReproError, IndexError):
    """A band index is outside a cube's spectral extent.

    Subclasses :class:`IndexError` so sequence-style band access keeps
    its native out-of-range semantics."""


class LayoutError(ReproError, ValueError):
    """An unknown or incompatible hyperspectral memory layout was requested."""


class ShaderError(ReproError):
    """A fragment shader program failed validation or execution."""


class ShaderValidationError(ShaderError, ValueError):
    """A shader IR tree is structurally invalid (bad arity, unbound register,
    unknown sampler, type mismatch)."""


class GpuOutOfMemoryError(ReproError, MemoryError):
    """The virtual GPU's VRAM allocator could not satisfy an allocation.

    Carries the allocation arithmetic as structured attributes — not just
    message text — so the degradation planner of
    :mod:`repro.resilience` (and tests) can reason about the shortfall:

    ``requested``
        Bytes the failed allocation asked for (``None`` when unknown).
    ``free`` / ``capacity``
        Bytes still available / total device bytes at failure time
        (``None`` when unknown).
    """

    def __init__(self, message: str = "", *, requested: int | None = None,
                 free: int | None = None,
                 capacity: int | None = None) -> None:
        super().__init__(message)
        self.requested = requested
        self.free = free
        self.capacity = capacity

    def __reduce__(self):
        # Keyword-only attributes do not survive the default
        # args-based exception pickling (worker exceptions cross the
        # pool's result queue), so ship them as state.
        return (self.__class__, self.args,
                {"requested": self.requested, "free": self.free,
                 "capacity": self.capacity})

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)


class StreamError(ReproError):
    """Misuse of the stream programming abstractions (unbound stream,
    mismatched shapes between kernel inputs, cyclic stage graphs...)."""


class DeviceError(ReproError):
    """A virtual device (GPU or CPU model) was configured inconsistently."""


class UnknownHandleError(DeviceError, KeyError):
    """A texture/buffer handle does not name a live device allocation.

    Subclasses :class:`KeyError` because the allocator is a mapping
    from handles to allocations and callers should be able to catch
    the miss as a plain lookup failure."""

    def __str__(self) -> str:
        # KeyError.__str__ repr()s the message; keep it readable.
        return Exception.__str__(self)


class UnknownBackendError(StreamError, ValueError):
    """A morphological backend name is not in the registry.

    Subclasses both :class:`StreamError` (backends are execution
    substrates of the stream decomposition) and :class:`ValueError`
    (callers that validate configuration catch it as a plain value
    problem).  The message always lists the registered names."""


class UnknownWorkloadError(StreamError, ValueError):
    """A workload name is not in the registry.

    The workload-registry counterpart of :class:`UnknownBackendError`,
    with the same dual inheritance: :class:`StreamError` because
    workloads are stage compositions of the stream decomposition,
    :class:`ValueError` so configuration validators catch it as a plain
    value problem.  The message always lists the registered names."""


class EnviFormatError(ReproError, ValueError):
    """An ENVI-style header could not be parsed or describes an unsupported
    interleave/dtype combination."""


class NonFiniteInputError(ReproError, ValueError):
    """An input cube contains NaN or infinite values.

    Raised at the AMC entry points (:func:`repro.core.amc.run_amc` /
    :func:`repro.pipeline.execute_amc`) before any stage runs: a NaN
    band would otherwise propagate silently through normalization and
    poison every SID downstream.  The message names the first offending
    pixel and band."""


class InvalidCubeError(ReproError, ValueError):
    """An input cube is structurally unusable (e.g. a zero-sized
    dimension).

    Raised at the same admission points as
    :class:`NonFiniteInputError` — before any stage runs and before a
    serving request occupies a queue slot: an empty cube has no pixels
    to classify, no spectra to normalize, and would otherwise surface
    as an obscure shape error deep inside a worker.  The message names
    the offending shape."""


class ServingError(ReproError):
    """Base class for the job-server layer (:mod:`repro.serving`)."""


class ServerBusyError(ServingError):
    """The server's admission queue is full; resubmit after a delay.

    Carries the backpressure hint as a structured attribute — not just
    message text — so clients (and the socket protocol) can implement
    retry-with-backoff without parsing strings:

    ``retry_after_s``
        Suggested delay before resubmitting, derived from the queue
        depth and the server's per-job cost estimate.
    """

    def __init__(self, message: str = "", *,
                 retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s

    def __reduce__(self):
        # Keyword-only attributes do not survive the default args-based
        # exception pickling (see GpuOutOfMemoryError), so ship them as
        # state.
        return (self.__class__, self.args,
                {"retry_after_s": self.retry_after_s})

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)


class ServerClosedError(ServingError):
    """A request reached a server that is not running (never started,
    stopping, or already stopped)."""


class StuckJobError(ServingError):
    """The watchdog gave up on a job whose executor stopped heartbeating.

    Raised (as the job's recorded failure — never thrown across the
    event loop) when a running job's heartbeat age exceeded its
    deadline more times than its retry budget allows.  The message
    carries the heartbeat age and the deadline that condemned it."""


class JournalCorruptError(ServingError):
    """A job-journal record could not be parsed during replay.

    Only raised for corruption *before* the final record: a truncated
    trailing line is the expected signature of a crash mid-append and
    is skipped silently (and counted), but garbage in the middle of
    the journal means the file was externally damaged and recovery
    cannot be trusted."""


class JobNotFoundError(ServingError, KeyError):
    """A job id does not exist on this server.

    Subclasses :class:`KeyError` because the job table is a mapping and
    callers that treat it as one should be able to catch the miss as a
    plain lookup failure."""

    def __str__(self) -> str:
        # KeyError.__str__ repr()s the message; keep it readable.
        return Exception.__str__(self)


class TransientFaultError(ReproError):
    """A transient, retryable failure during task execution.

    The retry machinery of :mod:`repro.resilience` treats this class
    (and its subclasses) as retryable by default; the fault injector of
    :mod:`repro.faults` raises it for its ``"transient"`` fault kind."""


class WorkerCrashError(TransientFaultError):
    """An injected worker crash, surfaced in-process.

    The ``"worker_crash"`` fault kind kills pool workers outright
    (``os._exit``); when the same fault fires in a non-worker process it
    raises this instead of taking the interpreter down.  Subclasses
    :class:`TransientFaultError` so in-process retry recovers it."""
