"""ASCII rendering of images for terminal inspection.

Good enough to eyeball a MEI map or a class map from a test log: the
image is block-averaged down to a character grid and mapped onto a
density ramp (scalar data) or base-36 class digits (label maps).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

#: Dark-to-bright character ramp.
_RAMP = " .:-=+*#%@"


def _downsample(image: np.ndarray, max_width: int,
                max_height: int) -> np.ndarray:
    h, w = image.shape
    step_y = max(1, -(-h // max_height))
    step_x = max(1, -(-w // max_width))
    trimmed = image[:h - h % step_y or None, :w - w % step_x or None]
    th, tw = trimmed.shape
    blocks = trimmed.reshape(th // step_y, step_y, tw // step_x, step_x)
    return blocks.mean(axis=(1, 3))


def render_ascii(image: np.ndarray, *, max_width: int = 78,
                 max_height: int = 40, labels: bool = False) -> str:
    """Render a 2-D array as ASCII art.

    Parameters
    ----------
    image:
        (H, W) scalar data, or a 1-based label map when ``labels``.
    max_width / max_height:
        Character budget; the image is block-averaged to fit.
    labels:
        Use one base-36 digit per (majority) class instead of a ramp.
    """
    image = np.asarray(image)
    if image.ndim != 2:
        raise ShapeError(f"expected a 2-D image, got shape {image.shape}")
    if labels:
        h, w = image.shape
        step_y = max(1, -(-h // max_height))
        step_x = max(1, -(-w // max_width))
        picked = image[::step_y, ::step_x].astype(int)
        digits = "0123456789abcdefghijklmnopqrstuvwxyz"
        return "\n".join("".join(digits[v % len(digits)] for v in row)
                         for row in picked)
    small = _downsample(image.astype(np.float64), max_width, max_height)
    lo, hi = float(small.min()), float(small.max())
    if hi <= lo:
        scaled = np.zeros_like(small, dtype=int)
    else:
        scaled = ((small - lo) / (hi - lo) * (len(_RAMP) - 1) + 0.5).astype(int)
    return "\n".join("".join(_RAMP[v] for v in row) for row in scaled)
