"""Image output without a plotting stack.

The environment has no matplotlib, so the Figure-5 artefacts (band image,
ground-truth map, MEI map) are written as portable any-maps — PGM for
grayscale, PPM for class maps with a deterministic colour table — plus an
ASCII renderer for terminal inspection.
"""

from repro.viz.ascii import render_ascii
from repro.viz.pnm import (
    class_palette,
    write_class_map_ppm,
    write_pgm,
    write_ppm,
)

__all__ = [
    "class_palette",
    "render_ascii",
    "write_class_map_ppm",
    "write_pgm",
    "write_ppm",
]
