"""PGM/PPM writers for scalar images and class maps.

Binary portable any-map formats (P5 grayscale, P6 color) are the
simplest widely readable image containers — every viewer and converter
understands them, and writing them needs nothing beyond NumPy.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError, ValidationError


def _normalize_to_u8(image: np.ndarray, *, percentile_clip: float = 2.0) -> np.ndarray:
    """Robustly scale a float image to uint8 (percentile-clipped)."""
    image = np.asarray(image, dtype=np.float64)
    lo, hi = np.percentile(image, [percentile_clip, 100.0 - percentile_clip])
    if hi <= lo:
        lo, hi = float(image.min()), float(image.max())
    if hi <= lo:
        return np.zeros(image.shape, dtype=np.uint8)
    out = (np.clip(image, lo, hi) - lo) / (hi - lo)
    return (out * 255.0 + 0.5).astype(np.uint8)


def write_pgm(image: np.ndarray, path: str, *,
              normalize: bool = True) -> str:
    """Write an (H, W) image as binary PGM.

    Float inputs are percentile-scaled unless ``normalize`` is off, in
    which case values must already be uint8-range.
    """
    image = np.asarray(image)
    if image.ndim != 2:
        raise ShapeError(f"PGM needs a 2-D image, got shape {image.shape}")
    data = _normalize_to_u8(image) if normalize \
        else image.astype(np.uint8, copy=False)
    with open(path, "wb") as fh:
        fh.write(f"P5\n{data.shape[1]} {data.shape[0]}\n255\n".encode())
        fh.write(np.ascontiguousarray(data).tobytes())
    return path


def write_ppm(rgb: np.ndarray, path: str) -> str:
    """Write an (H, W, 3) uint8 image as binary PPM."""
    rgb = np.asarray(rgb)
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise ShapeError(f"PPM needs (H, W, 3), got shape {rgb.shape}")
    data = rgb.astype(np.uint8, copy=False)
    with open(path, "wb") as fh:
        fh.write(f"P6\n{data.shape[1]} {data.shape[0]}\n255\n".encode())
        fh.write(np.ascontiguousarray(data).tobytes())
    return path


def class_palette(n_classes: int) -> np.ndarray:
    """A deterministic, well-separated (n+1, 3) uint8 colour table.

    Index 0 (unlabeled) is black; classes use golden-angle hues at two
    brightness levels so adjacent indices contrast.
    """
    if n_classes < 1:
        raise ValidationError(f"need at least one class, got {n_classes}")
    palette = np.zeros((n_classes + 1, 3), dtype=np.uint8)
    for k in range(1, n_classes + 1):
        hue = (k * 0.61803398875) % 1.0
        value = 0.95 if k % 2 else 0.70
        saturation = 0.85 if k % 3 else 0.55
        i = int(hue * 6.0) % 6
        f = hue * 6.0 - int(hue * 6.0)
        p = value * (1 - saturation)
        q = value * (1 - saturation * f)
        t = value * (1 - saturation * (1 - f))
        rgb = [(value, t, p), (q, value, p), (p, value, t),
               (p, q, value), (t, p, value), (value, p, q)][i]
        palette[k] = [int(c * 255 + 0.5) for c in rgb]
    return palette


def write_class_map_ppm(labels: np.ndarray, path: str, *,
                        n_classes: int | None = None) -> str:
    """Write a 1-based (H, W) label map as a colour PPM (Fig. 5 right)."""
    labels = np.asarray(labels)
    if labels.ndim != 2:
        raise ShapeError(f"label map must be 2-D, got shape {labels.shape}")
    if n_classes is None:
        n_classes = int(labels.max())
    if np.any(labels < 0) or np.any(labels > n_classes):
        raise ValidationError(
            f"labels outside [0, {n_classes}] cannot be colour-mapped")
    palette = class_palette(max(n_classes, 1))
    return write_ppm(palette[labels], path)
