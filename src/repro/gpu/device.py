"""The virtual GPU device: the object application code programs against.

:class:`VirtualGPU` owns a VRAM allocator, a cost model and a set of
counters; it exposes the four verbs of GPGPU programming circa 2005:

* :meth:`~VirtualGPU.upload` — create a device texture from host data
  (counted as a bus transfer, charged against VRAM);
* :meth:`~VirtualGPU.create_target` — allocate an empty render target;
* :meth:`~VirtualGPU.launch` — run a fragment shader over a render
  target with bound textures and uniforms (render-to-texture);
* :meth:`~VirtualGPU.download` — read a texture back to host memory.

Launch results are written into a target texture, so ping-pong chains
(output of one kernel feeding the next) work the way they do with
framebuffer objects on real hardware.
"""

from __future__ import annotations

import numpy as np

from repro.core.pairreuse import check_optimize
from repro.errors import ShaderError
from repro.gpu.cost import CostModel
from repro.gpu.counters import GpuCounters, KernelLaunchRecord, TransferRecord
from repro.gpu.interpreter import execute, execute_fused_lazy, execute_lazy
from repro.gpu.memory import VramAllocator
from repro.gpu.shader import FragmentShader
from repro.gpu.spec import GEFORCE_7800GTX, GpuSpec
from repro.gpu.texture import Texture2D


class VirtualGPU:
    """A simulated commodity GPU.

    Parameters
    ----------
    spec:
        The board to simulate; defaults to the paper's flagship
        (GeForce 7800 GTX).
    optimize:
        ``"fuse"`` (default) runs launches through the interpreter's
        fused fast path — strided fixed-offset fetches, the per-launch
        scratch temporary elided (results broadcast straight into the
        target texture), kernel costs cached per shader.  ``"none"``
        keeps the historical per-launch behaviour as the bit-identity
        oracle.  Texel values, launch records and modeled times are
        identical either way.

    Notes
    -----
    The device keeps *modeled* time (derived from the cost model) separate
    from host wall-clock time, which belongs to the caller's benchmark
    harness.  ``counters.total_time_s`` is the number a real board of the
    given spec would take for the recorded work.
    """

    def __init__(self, spec: GpuSpec = GEFORCE_7800GTX, *,
                 optimize: str = "fuse"):
        check_optimize(optimize)
        self.spec = spec
        self.optimize = optimize
        self.vram = VramAllocator(spec.vram_bytes)
        self.cost_model = CostModel(spec,
                                    cache_kernel_costs=optimize == "fuse")
        self.counters = GpuCounters()

    # ------------------------------------------------------------ textures
    def upload(self, data: np.ndarray, *, label: str = "") -> Texture2D:
        """Transfer host data into a new device texture.

        ``data`` must be (H, W, 4); it is converted to float32 (the only
        texel format the simulated pipeline renders to).
        """
        tex = Texture2D(np.array(data, dtype=np.float32, copy=True),
                        label=label)
        tex.handle = self.vram.allocate(tex.nbytes, label=label or "upload")
        self.counters.record_transfer(TransferRecord(
            direction="upload", nbytes=tex.nbytes,
            modeled_time_s=self.cost_model.transfer_time(tex.nbytes)))
        return tex

    def upload_scalar(self, image: np.ndarray, *, label: str = "") -> Texture2D:
        """Upload a scalar (H, W) map into the x channel of a texture."""
        tex = Texture2D.from_scalar_image(image, label=label)
        tex.handle = self.vram.allocate(tex.nbytes, label=label or "upload")
        self.counters.record_transfer(TransferRecord(
            direction="upload", nbytes=tex.nbytes,
            modeled_time_s=self.cost_model.transfer_time(tex.nbytes)))
        return tex

    def create_target(self, height: int, width: int, *,
                      label: str = "") -> Texture2D:
        """Allocate a zero-initialized render target (no bus traffic)."""
        tex = Texture2D.zeros(height, width, label=label)
        tex.handle = self.vram.allocate(tex.nbytes, label=label or "target")
        return tex

    def free(self, *textures: Texture2D) -> None:
        """Release textures' VRAM.  Safe to call once per texture."""
        for tex in textures:
            if tex.handle >= 0:
                self.vram.release(tex.handle)
                tex.handle = -1

    # -------------------------------------------------------------- launch
    def launch(self, shader: FragmentShader, target: Texture2D,
               textures: dict[str, Texture2D],
               uniforms: dict[str, np.ndarray] | None = None) -> Texture2D:
        """Run a fragment program over ``target``'s extents.

        All bound textures must be device-resident (uploaded or rendered
        on this device).  The result overwrites ``target.data`` and the
        launch is appended to the counters.
        """
        self._check_bindings(shader.name, target, textures)
        arrays = {name: tex.data for name, tex in textures.items()}
        if self.optimize == "fuse":
            # The raw evaluation broadcasts straight into the target —
            # the interpreter's full-extent scratch copy never exists.
            result = execute_lazy(shader, target.height, target.width,
                                  arrays, uniforms, fast_fetch=True)
            target.data[...] = result
            self.counters.record_fusion(temporaries_elided=1)
        else:
            result = execute(shader, target.height, target.width, arrays,
                             uniforms)
            target.data[...] = result

        cost, timing = self.cost_model.launch_time(
            shader, target.width, target.height)
        self.counters.record_launch(KernelLaunchRecord(
            kernel=shader.name,
            width=target.width,
            height=target.height,
            cycles_per_fragment=cost.cycles_per_fragment,
            static_fetches=cost.static_fetches,
            dynamic_fetches=cost.dynamic_fetches,
            modeled_time_s=timing.total_s,
            compute_time_s=timing.compute_s,
            memory_time_s=timing.memory_s))
        return target

    def _check_bindings(self, kernel_name: str, target: Texture2D,
                        textures: dict[str, Texture2D]) -> None:
        """Residency and hazard checks shared by all launch forms."""
        for name, tex in textures.items():
            if not isinstance(tex, Texture2D):
                raise ShaderError(
                    f"binding {name!r} is {type(tex).__name__}, "
                    f"expected Texture2D")
            if tex.handle < 0:
                raise ShaderError(
                    f"binding {name!r} ({tex.label or 'unnamed'}) is not "
                    f"device-resident; upload it first")
        if target.handle < 0:
            raise ShaderError("render target is not device-resident")
        if any(t is target for t in textures.values()):
            raise ShaderError(
                f"launch of {kernel_name!r} binds its own render target as "
                f"an input — read-write hazards are undefined on real "
                f"hardware; use ping-pong targets")

    def launch_fused(self, kernel, target: Texture2D,
                     textures: dict[str, Texture2D],
                     uniforms: dict[str, np.ndarray] | None = None
                     ) -> Texture2D:
        """Run a :class:`~repro.stream.kernel.FusedKernel` as ONE pass.

        The composite's parts are evaluated under a single shared
        context and structural memo — intermediate streams of the
        original chain never become textures, never touch VRAM and
        never pay a render-target write.  One launch record is
        appended, whose cycle and fetch counts sum the members' (the
        work still happens) while timing charges a single target write
        and launch overhead.  Valid in both ``optimize`` modes — the
        graph was fused by the stream compiler, not the device; the
        device mode only selects the interpreter's fetch fast path.
        """
        self._check_bindings(kernel.name, target, textures)
        arrays = {name: tex.data for name, tex in textures.items()}
        result = execute_fused_lazy(
            kernel.part_shaders, kernel.part_names, target.height,
            target.width, arrays, uniforms,
            fast_fetch=self.optimize == "fuse")
        target.data[...] = result
        # fused_count - 1 intermediate textures never materialized, plus
        # the interpreter scratch when the fused fetch path is on.
        self.counters.record_fusion(
            passes_fused=kernel.fused_count - 1,
            temporaries_elided=kernel.fused_count - 1
            + (1 if self.optimize == "fuse" else 0))

        cost, timing = self.cost_model.fused_launch_time(
            kernel.part_shaders, target.width, target.height)
        self.counters.record_launch(KernelLaunchRecord(
            kernel=kernel.name,
            width=target.width,
            height=target.height,
            cycles_per_fragment=cost.cycles_per_fragment,
            static_fetches=cost.static_fetches,
            dynamic_fetches=cost.dynamic_fetches,
            modeled_time_s=timing.total_s,
            compute_time_s=timing.compute_s,
            memory_time_s=timing.memory_s))
        return target

    # ------------------------------------------------------------ download
    def download(self, texture: Texture2D) -> np.ndarray:
        """Read a texture back to the host (counted as a bus transfer)."""
        self.counters.record_transfer(TransferRecord(
            direction="download", nbytes=texture.nbytes,
            modeled_time_s=self.cost_model.transfer_time(texture.nbytes)))
        return texture.data.copy()

    def download_scalar(self, texture: Texture2D) -> np.ndarray:
        """Read back only the x channel as an (H, W) array.

        Modeled as a quarter-size transfer: real implementations read a
        single-channel framebuffer for scalar results.
        """
        nbytes = texture.nbytes // 4
        self.counters.record_transfer(TransferRecord(
            direction="download", nbytes=nbytes,
            modeled_time_s=self.cost_model.transfer_time(nbytes)))
        return texture.data[:, :, 0].copy()

    # ------------------------------------------------------------- control
    def reset_counters(self) -> None:
        """Clear counters (VRAM allocations are untouched)."""
        self.counters.reset()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"VirtualGPU({self.spec.name!r}, "
                f"{self.vram.used}/{self.vram.capacity} B VRAM, "
                f"{self.counters.kernel_launch_count} launches)")
