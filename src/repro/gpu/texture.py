"""2-D RGBA textures and the spectral band packing of paper Fig. 3.

A texture is a (height, width, 4) float32 array: four channels per texel,
matching the Red/Green/Blue/Alpha short-vector lanes the fragment
processors operate on in SIMD fashion.  A hyperspectral chunk with N
bands becomes a *stack* of ``ceil(N / 4)`` textures, each holding four
consecutive channels; the final texture is zero-padded and accompanied by
a channel mask so reduction kernels can ignore the padding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError

#: SIMD width of a fragment processor's vector lanes.
CHANNELS: int = 4

#: Bytes per texel of a float32 RGBA texture.
TEXEL_BYTES: int = 4 * CHANNELS


@dataclass
class Texture2D:
    """A float32 RGBA texture resident in (virtual) VRAM.

    Attributes
    ----------
    data:
        (height, width, 4) float32 array.
    handle:
        Allocation handle in the owning device's VRAM allocator, or -1
        for textures not yet bound to a device.
    label:
        Debug name carried into counter records.
    """

    data: np.ndarray
    handle: int = -1
    label: str = ""

    def __post_init__(self) -> None:
        data = np.asarray(self.data, dtype=np.float32)
        if data.ndim != 3 or data.shape[2] != CHANNELS:
            raise ShapeError(
                f"a Texture2D is (H, W, 4) float32, got shape {data.shape}")
        self.data = data

    @property
    def height(self) -> int:
        return self.data.shape[0]

    @property
    def width(self) -> int:
        return self.data.shape[1]

    @property
    def nbytes(self) -> int:
        return self.height * self.width * TEXEL_BYTES

    @classmethod
    def zeros(cls, height: int, width: int, *, label: str = "") -> "Texture2D":
        """A zero-filled render target."""
        if height <= 0 or width <= 0:
            raise ShapeError(f"texture extents must be positive, got "
                             f"{height}x{width}")
        return cls(np.zeros((height, width, CHANNELS), dtype=np.float32),
                   label=label)

    @classmethod
    def from_scalar_image(cls, image: np.ndarray, *, label: str = "") -> "Texture2D":
        """Pack a scalar (H, W) map into the x channel (y, z, w zero)."""
        image = np.asarray(image, dtype=np.float32)
        if image.ndim != 2:
            raise ShapeError(f"expected a 2-D image, got ndim={image.ndim}")
        data = np.zeros(image.shape + (CHANNELS,), dtype=np.float32)
        data[:, :, 0] = image
        return cls(data, label=label)

    def scalar_image(self) -> np.ndarray:
        """The x channel as an (H, W) array (copy-free view)."""
        return self.data[:, :, 0]


def band_group_count(bands: int) -> int:
    """Number of RGBA textures needed for ``bands`` spectral channels."""
    if bands <= 0:
        raise ShapeError(f"band count must be positive, got {bands}")
    return (bands + CHANNELS - 1) // CHANNELS


def group_masks(bands: int) -> list[np.ndarray]:
    """Per-group channel masks: 1.0 for real bands, 0.0 for padding.

    Reduction kernels multiply by the mask before summing so zero-padded
    lanes never contribute — necessary because the probability
    normalization of eq. 3 divides by the *sum over real bands only*.
    """
    masks = []
    for g in range(band_group_count(bands)):
        mask = np.zeros(CHANNELS, dtype=np.float32)
        filled = min(CHANNELS, bands - g * CHANNELS)
        mask[:filled] = 1.0
        masks.append(mask)
    return masks


def pack_bands(bip: np.ndarray) -> list[np.ndarray]:
    """Split an (H, W, N) cube into a stack of (H, W, 4) texture arrays.

    Paper Fig. 3: *"we have mapped every group of four consecutive
    channels onto the RGBA color channels of the texture elements"*.  The
    last group is zero-padded to four channels.

    Returns raw float32 arrays (not yet device-resident textures).
    """
    bip = np.asarray(bip)
    if bip.ndim != 3:
        raise ShapeError(f"expected an (H, W, N) cube, got ndim={bip.ndim}")
    h, w, n = bip.shape
    groups = band_group_count(n)
    out = []
    for g in range(groups):
        lo = g * CHANNELS
        hi = min(lo + CHANNELS, n)
        tex = np.zeros((h, w, CHANNELS), dtype=np.float32)
        tex[:, :, :hi - lo] = bip[:, :, lo:hi]
        out.append(tex)
    return out


def unpack_bands(textures: list[np.ndarray] | list[Texture2D],
                 bands: int) -> np.ndarray:
    """Inverse of :func:`pack_bands`: reassemble an (H, W, bands) cube.

    Accepts either raw arrays or :class:`Texture2D` objects.
    """
    if not textures:
        raise ShapeError("cannot unpack an empty texture stack")
    arrays = [t.data if isinstance(t, Texture2D) else np.asarray(t)
              for t in textures]
    if band_group_count(bands) != len(arrays):
        raise ShapeError(
            f"{len(arrays)} textures cannot hold exactly {bands} bands")
    h, w = arrays[0].shape[:2]
    for a in arrays:
        if a.shape != (h, w, CHANNELS):
            raise ShapeError("texture stack has inconsistent shapes")
    stacked = np.concatenate(arrays, axis=2)
    return stacked[:, :, :bands]
