"""A virtual commodity GPU of the 2003-2005 era.

The paper runs Cg fragment shaders on an NVIDIA FX5950 Ultra (NV38) and a
7800 GTX (G70).  No GPU is available in this environment, so this package
implements the machine the paper programs against:

* :mod:`~repro.gpu.spec` — device descriptions parameterized exactly by
  the columns of paper Table 1 (pixel-shader count, core clock, memory
  bandwidth, bus generation, VRAM size), with presets for both boards.
* :mod:`~repro.gpu.texture` — 2-D RGBA float textures and the band-group
  packing of paper Fig. 3 (four consecutive spectral channels per texel).
* :mod:`~repro.gpu.shaderir` / :mod:`~repro.gpu.shader` — a small Cg-like
  fragment-shader IR (float4 arithmetic, swizzles, static and dependent
  texture fetches) with a structural validator.
* :mod:`~repro.gpu.interpreter` — vectorized NumPy execution of shader
  programs over whole render targets, in float32 like the real fragment
  pipelines.
* :mod:`~repro.gpu.cost` — the per-instruction cost tables and the
  kernel/transfer timing model that converts *counted* work into modeled
  milliseconds.
* :mod:`~repro.gpu.device` — :class:`~repro.gpu.device.VirtualGPU`, the
  programmer-facing object: upload, launch, download, counters, VRAM
  accounting.

Everything a benchmark reports is derived from work the interpreter
actually performed — the timing model multiplies counted fragments, ops,
fetches and bytes by spec-derived rates; no result is hard-coded.
"""

from repro.gpu.cost import CostModel, OP_COSTS
from repro.gpu.counters import GpuCounters, KernelLaunchRecord
from repro.gpu.device import VirtualGPU
from repro.gpu.memory import VramAllocator
from repro.gpu.shader import FragmentShader
from repro.gpu.shaderir import (
    Combine,
    Const,
    Dot,
    Expr,
    Floor,
    Op,
    Swizzle,
    TexFetch,
    TexFetchDyn,
    Uniform,
    add,
    cmp_ge,
    cmp_gt,
    div,
    dot4,
    log,
    max_,
    min_,
    mul,
    select,
    sub,
    vec4,
)
from repro.gpu.spec import (
    AGP8X_BANDWIDTH,
    PCIE_X16_BANDWIDTH,
    GEFORCE_7800GTX,
    GEFORCE_FX5950U,
    GpuSpec,
)
from repro.gpu.texture import Texture2D, pack_bands, unpack_bands

__all__ = [
    "AGP8X_BANDWIDTH",
    "Combine",
    "Const",
    "CostModel",
    "Dot",
    "Expr",
    "Floor",
    "FragmentShader",
    "GEFORCE_7800GTX",
    "GEFORCE_FX5950U",
    "GpuCounters",
    "GpuSpec",
    "KernelLaunchRecord",
    "OP_COSTS",
    "Op",
    "PCIE_X16_BANDWIDTH",
    "Swizzle",
    "TexFetch",
    "TexFetchDyn",
    "Texture2D",
    "Uniform",
    "VirtualGPU",
    "VramAllocator",
    "add",
    "cmp_ge",
    "cmp_gt",
    "div",
    "dot4",
    "log",
    "max_",
    "min_",
    "mul",
    "pack_bands",
    "select",
    "sub",
    "unpack_bands",
    "vec4",
]
