"""GPU device specifications (paper Table 1).

A :class:`GpuSpec` carries exactly the parameters that differentiated the
two boards in the paper's evaluation, plus the microarchitectural
constants the timing model needs (texture-cache behaviour, launch
overhead).  The two presets transcribe Table 1:

=====================  ===============  ==============
Feature                FX5950 Ultra     7800 GTX
=====================  ===============  ==============
Year                   2003             2005
Architecture           NV38             G70
Bus                    AGP x8           PCI Express
Video memory           256 MB           256 MB
Core clock             475 MHz          430 MHz
Memory bandwidth       30.4 GB/s        38.4 GB/s
Pixel shader procs.    4                24
=====================  ===============  ==============
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import DeviceError

#: Practical host->device bandwidth of an AGP 8x bus (bytes/s).  The
#: signalling rate is 2.1 GB/s; sustained texture uploads reached roughly
#: three quarters of that.
AGP8X_BANDWIDTH: float = 1.6e9

#: Practical host->device bandwidth of PCI Express x16 (bytes/s).  4 GB/s
#: per direction nominal; ~3 GB/s sustained on 2005 chipsets.
PCIE_X16_BANDWIDTH: float = 3.0e9


@dataclass(frozen=True)
class GpuSpec:
    """Parameters of a simulated GPU.

    The first block mirrors paper Table 1; the second block holds model
    constants that are properties of the *era's* designs rather than of a
    particular board (see :mod:`repro.gpu.cost` for how each is used).
    """

    name: str
    year: int
    architecture: str
    core_clock_hz: float
    n_fragment_pipes: int
    mem_bandwidth: float          # bytes/s, on-board
    bus_bandwidth: float          # bytes/s, host <-> device
    vram_bytes: int

    # --- model constants -------------------------------------------------
    #: Fraction of *static* (fixed-offset) texture fetches served by the
    #: texture cache.  Fixed-offset access is perfectly 2-D-local, which
    #: the dedicated texture caches of the era were designed for [7].
    texture_cache_hit_rate: float = 0.92
    #: Hit rate for *dependent* (computed-coordinate) fetches, which defeat
    #: prefetching.
    dependent_fetch_hit_rate: float = 0.55
    #: Fixed driver + state-change cost per kernel launch (seconds).  A
    #: glDrawArrays round trip through the 2005 driver stack.
    launch_overhead_s: float = 2.0e-5
    #: Fixed per-transfer latency (seconds): pinning, DMA setup.
    transfer_latency_s: float = 1.0e-4
    #: Instructions issued per pipe per clock (fp30/G70 issue one float4
    #: MAD-class op per cycle per pipe).
    issue_rate: float = 1.0

    def __post_init__(self) -> None:
        if self.core_clock_hz <= 0 or self.n_fragment_pipes <= 0:
            raise DeviceError("clock and pipe count must be positive")
        if self.mem_bandwidth <= 0 or self.bus_bandwidth <= 0:
            raise DeviceError("bandwidths must be positive")
        if self.vram_bytes <= 0:
            raise DeviceError("vram_bytes must be positive")
        for rate in (self.texture_cache_hit_rate,
                     self.dependent_fetch_hit_rate):
            if not 0.0 <= rate <= 1.0:
                raise DeviceError(f"cache hit rate {rate} outside [0, 1]")

    @property
    def shader_throughput(self) -> float:
        """Peak float4 shader instructions per second."""
        return self.core_clock_hz * self.n_fragment_pipes * self.issue_rate

    def with_(self, **overrides) -> "GpuSpec":
        """A copy with some fields replaced (for ablation studies)."""
        return replace(self, **overrides)


#: NVIDIA GeForce FX 5950 Ultra (NV38, 2003) — paper Table 1, column 1.
GEFORCE_FX5950U = GpuSpec(
    name="GeForce FX5950 Ultra",
    year=2003,
    architecture="NV38",
    core_clock_hz=475e6,
    n_fragment_pipes=4,
    mem_bandwidth=30.4e9,
    bus_bandwidth=AGP8X_BANDWIDTH,
    vram_bytes=256 * 1024 * 1024,
    # The NV38's "4x2" design pairs each fragment pipe with two texture
    # units; on the short arithmetic kernels of this workload it sustains
    # roughly one float4 instruction per pipe per clock.
    issue_rate=1.0,
)

#: NVIDIA GeForce 7800 GTX (G70, 2005) — paper Table 1, column 2.
GEFORCE_7800GTX = GpuSpec(
    name="GeForce 7800 GTX",
    year=2005,
    architecture="G70",
    core_clock_hz=430e6,
    n_fragment_pipes=24,
    mem_bandwidth=38.4e9,
    bus_bandwidth=PCIE_X16_BANDWIDTH,
    vram_bytes=256 * 1024 * 1024,
    # Each G70 fragment pipe carries two vec4 ALUs (the famous "shader
    # unit 0/1" dual-issue design), so it can retire two float4
    # MAD-class instructions per clock.
    issue_rate=2.0,
)
