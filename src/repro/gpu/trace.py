"""Chrome-trace export of the device timeline.

The counters record *what* ran; this module lays the records out on a
modeled timeline and exports them in the Chrome trace-event format
(``chrome://tracing`` / Perfetto / ``about:tracing``), giving the
simulated device the profiler view a real GPU gets from its vendor
tools.  Kernels and transfers are placed back to back in submission
order — the virtual device is a single in-order queue, which is also how
the cost model composes times.
"""

from __future__ import annotations

import json

from repro.gpu.counters import GpuCounters


def build_timeline(counters: GpuCounters) -> list[dict]:
    """Lay launches and transfers on a modeled timeline.

    Returns trace events (``ph: "X"`` complete events, microsecond
    timestamps) on two rows: pid 1 / tid 1 = kernel queue, tid 2 = bus.
    Kernel events carry the per-launch breakdown as args.
    """
    events: list[dict] = []
    cursor_us = 0.0
    # interleave in recorded order: transfers and launches each keep
    # their own submission order; merge by replaying both lists the way
    # the device recorded them (uploads precede the launches that use
    # them because record order is call order).
    merged: list[tuple[str, object]] = [("launch", r)
                                        for r in counters.launches]
    merged += [("transfer", t) for t in counters.transfers]
    # stable order proxy: the device appends to each list as calls
    # happen, but relative order across lists is not stored; transfers
    # first is the faithful choice for this pipeline (uploads happen
    # before kernels, downloads after — and downloads are few).
    uploads = [t for t in counters.transfers if t.direction == "upload"]
    downloads = [t for t in counters.transfers if t.direction == "download"]

    for transfer in uploads:
        duration = transfer.modeled_time_s * 1e6
        events.append({
            "name": f"upload {transfer.nbytes >> 10} KiB",
            "cat": "transfer", "ph": "X", "pid": 1, "tid": 2,
            "ts": cursor_us, "dur": duration,
            "args": {"bytes": transfer.nbytes},
        })
        cursor_us += duration
    for record in counters.launches:
        duration = record.modeled_time_s * 1e6
        events.append({
            "name": record.kernel,
            "cat": "kernel", "ph": "X", "pid": 1, "tid": 1,
            "ts": cursor_us, "dur": duration,
            "args": {
                "fragments": record.fragments,
                "cycles_per_fragment": record.cycles_per_fragment,
                "compute_us": record.compute_time_s * 1e6,
                "memory_us": record.memory_time_s * 1e6,
            },
        })
        cursor_us += duration
    for transfer in downloads:
        duration = transfer.modeled_time_s * 1e6
        events.append({
            "name": f"download {transfer.nbytes >> 10} KiB",
            "cat": "transfer", "ph": "X", "pid": 1, "tid": 2,
            "ts": cursor_us, "dur": duration,
            "args": {"bytes": transfer.nbytes},
        })
        cursor_us += duration
    return events


def export_chrome_trace(counters: GpuCounters, path: str) -> str:
    """Write the timeline as a ``.json`` Chrome trace file.

    Returns ``path``.  Load it in Perfetto / chrome://tracing to see the
    modeled device timeline with per-kernel durations and args.
    """
    trace = {
        "traceEvents": build_timeline(counters),
        "displayTimeUnit": "ms",
        "otherData": {
            "kernel_launches": counters.kernel_launch_count,
            "modeled_total_ms": counters.total_time_s * 1e3,
        },
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, indent=1)
    return path
