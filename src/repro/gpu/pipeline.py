"""The programmable graphics pipeline of paper Fig. 2.

GPGPU code of the era never calls the fragment stage directly: it draws
a screen-sized quad, the (programmable) vertex stage transforms the four
vertices, the rasterizer turns the quad into one fragment per output
pixel with interpolated texture coordinates, the fragment processors run
the kernel, and raster operations write the framebuffer.  The
:class:`VirtualGPU` device hides all of that behind ``launch``; this
module makes the hidden stages explicit so the full Fig. 2 path is
implemented and testable:

* :class:`Vertex` / :func:`make_quad` — the geometry GPGPU actually
  submits (two triangles covering the viewport);
* :class:`VertexShader` — the (trivial for GPGPU) vertex program: an
  affine transform of positions plus pass-through texture coordinates;
* :func:`rasterize` — scan conversion of the transformed triangles into
  a fragment coverage mask with barycentric-interpolated texture
  coordinates;
* :class:`QuadRenderer` — the whole chain: submit quad → vertex stage →
  rasterize → fragment stage (the shader interpreter) → framebuffer,
  asserting on the way that a standard GPGPU quad covers every pixel
  exactly once (the property ``launch`` relies on).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShaderError, ShapeError
from repro.gpu.interpreter import execute
from repro.gpu.shader import FragmentShader


@dataclass(frozen=True)
class Vertex:
    """A vertex with a 2-D position (pixel space) and texture coordinate."""

    x: float
    y: float
    u: float
    v: float


def make_quad(width: int, height: int) -> tuple[Vertex, ...]:
    """The standard GPGPU full-viewport quad (two CCW triangles).

    Positions are in pixel space ``[0, width] x [0, height]``; texture
    coordinates span ``[0, 1]``.
    """
    if width <= 0 or height <= 0:
        raise ShapeError(f"viewport must be positive, got {width}x{height}")
    # Vertex positions, not texel data: the rasterizer interpolates in
    # host precision before any float32 shading happens.
    w, h = float(width), float(height)  # reprolint: disable=dtype-discipline
    v00 = Vertex(0.0, 0.0, 0.0, 0.0)
    v10 = Vertex(w, 0.0, 1.0, 0.0)
    v01 = Vertex(0.0, h, 0.0, 1.0)
    v11 = Vertex(w, h, 1.0, 1.0)
    # triangles (v00, v10, v11) and (v00, v11, v01)
    return (v00, v10, v11, v00, v11, v01)


@dataclass(frozen=True)
class VertexShader:
    """An affine vertex program: ``p' = scale * p + offset``.

    GPGPU uses the identity; the transform is kept programmable so the
    vertex stage is genuinely exercised (e.g. rendering into a sub-rect,
    which the pipeline tests use).
    """

    scale: tuple[float, float] = (1.0, 1.0)
    offset: tuple[float, float] = (0.0, 0.0)

    def run(self, vertices: tuple[Vertex, ...]) -> tuple[Vertex, ...]:
        sx, sy = self.scale
        ox, oy = self.offset
        return tuple(Vertex(v.x * sx + ox, v.y * sy + oy, v.u, v.v)
                     for v in vertices)


def _edge(ax, ay, bx, by, px, py):
    """Signed area edge function (vectorized over p)."""
    return (bx - ax) * (py - ay) - (by - ay) * (px - ax)


def rasterize(vertices: tuple[Vertex, ...], width: int, height: int
              ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Scan-convert triangles into per-pixel coverage and texcoords.

    Fragments are generated at pixel centres (x + 0.5, y + 0.5) using the
    standard edge-function test with a top-left-ish tie rule (boundary
    pixels belong to the triangle whose interior they touch first, and a
    shared diagonal never double-covers).

    Returns
    -------
    (coverage, u, v):
        ``coverage`` is an (H, W) int array counting how many triangles
        cover each pixel; ``u``/``v`` hold the interpolated texture
        coordinates where covered (0 elsewhere).
    """
    if len(vertices) % 3 != 0:
        raise ShapeError(f"vertex count {len(vertices)} is not triangles")
    coverage = np.zeros((height, width), dtype=np.int32)
    # Barycentric texcoord interpolation runs in f64 so the edge-function
    # tie rules stay exact; these are coordinates, never texel values.
    u = np.zeros((height, width), dtype=np.float64)  # reprolint: disable=dtype-discipline
    v = np.zeros((height, width), dtype=np.float64)  # reprolint: disable=dtype-discipline
    px = np.arange(width)[None, :] + 0.5
    py = np.arange(height)[:, None] + 0.5

    for t in range(0, len(vertices), 3):
        a, b, c = vertices[t:t + 3]
        area = _edge(a.x, a.y, b.x, b.y, c.x, c.y)
        if area == 0.0:
            continue  # degenerate triangle contributes nothing
        w0 = _edge(b.x, b.y, c.x, c.y, px, py) / area
        w1 = _edge(c.x, c.y, a.x, a.y, px, py) / area
        w2 = _edge(a.x, a.y, b.x, b.y, px, py) / area
        # strict-interior on the shared diagonal, inclusive elsewhere:
        # include edges w>=0 but break ties on exactly-zero barycentrics
        # by requiring the first triangle's zero edge to be a "leading"
        # edge (w0 zero excluded for the second triangle of the quad).
        inside = (w0 >= 0) & (w1 >= 0) & (w2 >= 0)
        if t > 0:
            inside &= ~((w2 == 0) | (w0 == 0))  # shared-edge rule
        mask = inside & (coverage == 0)
        coverage += inside.astype(np.int32)
        u[mask] = (w0 * a.u + w1 * b.u + w2 * c.u)[mask]
        v[mask] = (w0 * a.v + w1 * b.v + w2 * c.v)[mask]
    return coverage, u, v


class QuadRenderer:
    """The full Fig. 2 chain for a GPGPU draw call."""

    def __init__(self, vertex_shader: VertexShader | None = None):
        self.vertex_shader = vertex_shader or VertexShader()
        self.vertices_processed = 0
        self.fragments_rasterized = 0

    def render(self, shader: FragmentShader, width: int, height: int,
               textures: dict[str, np.ndarray],
               uniforms: dict[str, np.ndarray] | None = None) -> np.ndarray:
        """Draw the full-viewport quad through every pipeline stage.

        Raises
        ------
        ShaderError
            If the transformed geometry fails to cover every pixel
            exactly once — the precondition of stream-kernel semantics.
        """
        quad = make_quad(width, height)
        transformed = self.vertex_shader.run(quad)
        self.vertices_processed += len(transformed)

        coverage, _, _ = rasterize(transformed, width, height)
        self.fragments_rasterized += int((coverage > 0).sum())
        if not np.all(coverage == 1):
            over = int((coverage > 1).sum())
            under = int((coverage == 0).sum())
            raise ShaderError(
                f"quad does not cover the viewport exactly once "
                f"({under} uncovered, {over} double-covered pixels); "
                f"stream-kernel semantics require one fragment per pixel")
        return execute(shader, height, width, textures, uniforms)
