"""Performance counters for the virtual GPU.

Every kernel launch and every bus transfer appends a record; the counters
aggregate them into the quantities the timing model and the benchmarks
consume.  The counters are the ground truth behind every modeled
millisecond reported in EXPERIMENTS.md — nothing is reported that was not
counted here.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class KernelLaunchRecord:
    """One fragment-program execution over a render target."""

    kernel: str
    width: int
    height: int
    cycles_per_fragment: float
    static_fetches: int       # per fragment
    dynamic_fetches: int      # per fragment
    modeled_time_s: float
    compute_time_s: float
    memory_time_s: float

    @property
    def fragments(self) -> int:
        return self.width * self.height


@dataclass(frozen=True)
class TransferRecord:
    """One host<->device transfer."""

    direction: str            # "upload" | "download"
    nbytes: int
    modeled_time_s: float


@dataclass
class GpuCounters:
    """Aggregated activity of a :class:`~repro.gpu.device.VirtualGPU`."""

    launches: list[KernelLaunchRecord] = field(default_factory=list)
    transfers: list[TransferRecord] = field(default_factory=list)
    #: Render-to-texture passes that executed inside a composite (fused)
    #: kernel instead of as their own launch (stream-graph fusion).
    passes_fused: int = 0
    #: Full-extent intermediate arrays never materialized: the
    #: interpreter's per-launch scratch on the fused device path plus
    #: one per intermediate texture elided by stream-graph fusion.
    temporaries_elided: int = 0

    # ------------------------------------------------------------ recording
    def record_launch(self, record: KernelLaunchRecord) -> None:
        self.launches.append(record)

    def record_transfer(self, record: TransferRecord) -> None:
        self.transfers.append(record)

    def record_fusion(self, *, passes_fused: int = 0,
                      temporaries_elided: int = 0) -> None:
        """Account work the fused paths avoided doing."""
        self.passes_fused += passes_fused
        self.temporaries_elided += temporaries_elided

    def reset(self) -> None:
        """Clear all recorded activity."""
        self.launches.clear()
        self.transfers.clear()
        self.passes_fused = 0
        self.temporaries_elided = 0

    # ----------------------------------------------------------- aggregates
    @property
    def kernel_launch_count(self) -> int:
        return len(self.launches)

    @property
    def fragments_shaded(self) -> int:
        return sum(r.fragments for r in self.launches)

    @property
    def texture_fetches(self) -> int:
        return sum(r.fragments * (r.static_fetches + r.dynamic_fetches)
                   for r in self.launches)

    @property
    def bytes_uploaded(self) -> int:
        return sum(t.nbytes for t in self.transfers if t.direction == "upload")

    @property
    def bytes_downloaded(self) -> int:
        return sum(t.nbytes for t in self.transfers
                   if t.direction == "download")

    @property
    def kernel_time_s(self) -> float:
        """Modeled time spent in fragment programs."""
        return sum(r.modeled_time_s for r in self.launches)

    @property
    def transfer_time_s(self) -> float:
        """Modeled time spent on the bus."""
        return sum(t.modeled_time_s for t in self.transfers)

    @property
    def upload_time_s(self) -> float:
        """Modeled time spent on host->device transfers (stream upload)."""
        return sum(t.modeled_time_s for t in self.transfers
                   if t.direction == "upload")

    @property
    def download_time_s(self) -> float:
        """Modeled time spent on device->host transfers (stream
        download)."""
        return sum(t.modeled_time_s for t in self.transfers
                   if t.direction == "download")

    @property
    def total_time_s(self) -> float:
        """Modeled end-to-end device time (kernels + transfers)."""
        return self.kernel_time_s + self.transfer_time_s

    def time_by_kernel(self) -> dict[str, float]:
        """Modeled seconds grouped by kernel name — the profile a
        ``cProfile``-style analysis of the algorithm would show."""
        out: dict[str, float] = {}
        for r in self.launches:
            out[r.kernel] = out.get(r.kernel, 0.0) + r.modeled_time_s
        return out

    def summary(self) -> dict[str, float]:
        """Flat dict of the headline aggregates (stable keys for tests)."""
        return {
            "kernel_launches": float(self.kernel_launch_count),
            "fragments_shaded": float(self.fragments_shaded),
            "texture_fetches": float(self.texture_fetches),
            "bytes_uploaded": float(self.bytes_uploaded),
            "bytes_downloaded": float(self.bytes_downloaded),
            "kernel_time_s": self.kernel_time_s,
            "transfer_time_s": self.transfer_time_s,
            "upload_time_s": self.upload_time_s,
            "download_time_s": self.download_time_s,
            "total_time_s": self.total_time_s,
            "passes_fused": float(self.passes_fused),
            "temporaries_elided": float(self.temporaries_elided),
        }
