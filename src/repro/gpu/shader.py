"""Fragment shader programs: declaration + validation.

A :class:`FragmentShader` is the unit the device launches: a named body
expression over declared samplers and uniforms.  Validation happens at
construction (the moment a real Cg program would fail to compile), so a
launch can assume a structurally sound program and only has to check the
*bindings* it receives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ShaderValidationError
from repro.gpu import shaderir as ir


@dataclass(frozen=True)
class ShaderStats:
    """Static instruction statistics of a validated shader."""

    instruction_count: int
    static_fetches: int
    dynamic_fetches: int
    transcendental_count: int
    max_static_offset: int  # Chebyshev radius of constant fetch offsets


@dataclass(frozen=True)
class FragmentShader:
    """A validated fragment program.

    Parameters
    ----------
    name:
        Kernel name (appears in counter records and profiles).
    body:
        The output expression — the float4 written to the render target.
    samplers:
        Texture unit names the body may fetch from, in binding order.
    uniforms:
        Parameter names the body may reference.
    """

    name: str
    body: ir.Expr
    samplers: tuple[str, ...] = ()
    uniforms: tuple[str, ...] = ()
    _stats: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ShaderValidationError("shader needs a non-empty name")
        if len(set(self.samplers)) != len(self.samplers):
            raise ShaderValidationError(
                f"duplicate sampler names in {self.samplers}")
        if len(set(self.uniforms)) != len(self.uniforms):
            raise ShaderValidationError(
                f"duplicate uniform names in {self.uniforms}")
        sampler_set = set(self.samplers)
        uniform_set = set(self.uniforms)
        used_samplers: set[str] = set()
        used_uniforms: set[str] = set()

        n_instr = 0
        n_static = 0
        n_dyn = 0
        n_trans = 0
        max_off = 0
        for node in ir.walk(self.body):
            if isinstance(node, ir.TexFetch):
                if node.sampler not in sampler_set:
                    raise ShaderValidationError(
                        f"shader {self.name!r} fetches undeclared sampler "
                        f"{node.sampler!r}")
                used_samplers.add(node.sampler)
                n_static += 1
                n_instr += 1
                max_off = max(max_off, abs(node.dx), abs(node.dy))
            elif isinstance(node, ir.TexFetchDyn):
                if node.sampler not in sampler_set:
                    raise ShaderValidationError(
                        f"shader {self.name!r} fetches undeclared sampler "
                        f"{node.sampler!r}")
                used_samplers.add(node.sampler)
                n_dyn += 1
                n_instr += 1
            elif isinstance(node, ir.Uniform):
                if node.name not in uniform_set:
                    raise ShaderValidationError(
                        f"shader {self.name!r} references undeclared uniform "
                        f"{node.name!r}")
                used_uniforms.add(node.name)
            elif isinstance(node, ir.Op):
                n_instr += 1
                if node.op in ("log", "exp", "rcp", "sqrt", "div"):
                    n_trans += 1
            elif isinstance(node, (ir.Dot, ir.Select, ir.Combine)):
                n_instr += 1
            # Const / Uniform / FragCoord / Swizzle are free register reads.

        unused_samplers = sampler_set - used_samplers
        if unused_samplers:
            raise ShaderValidationError(
                f"shader {self.name!r} declares unused samplers "
                f"{sorted(unused_samplers)}")
        unused_uniforms = uniform_set - used_uniforms
        if unused_uniforms:
            raise ShaderValidationError(
                f"shader {self.name!r} declares unused uniforms "
                f"{sorted(unused_uniforms)}")
        self._stats["stats"] = ShaderStats(
            instruction_count=n_instr,
            static_fetches=n_static,
            dynamic_fetches=n_dyn,
            transcendental_count=n_trans,
            max_static_offset=max_off,
        )

    @property
    def stats(self) -> ShaderStats:
        """Static statistics computed at validation time."""
        return self._stats["stats"]
