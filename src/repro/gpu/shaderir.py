"""Fragment-shader intermediate representation ("mini-Cg").

Kernels in the paper are hand-coded Cg fragment programs compiled with the
``fp30`` profile.  Here a kernel body is an expression tree over float4
values built from the node types below; the tree is validated by
:mod:`repro.gpu.shader`, executed by :mod:`repro.gpu.interpreter` and
costed by :mod:`repro.gpu.cost`.

Semantics follow the hardware the paper targets:

* every value is a 4-lane float32 vector (R/G/B/A);
* ``TexFetch`` samples a bound texture at the current fragment's
  coordinate plus a *compile-time constant* offset, with clamp-to-edge
  addressing (``GL_CLAMP_TO_EDGE``) — the addressing mode all
  implementations in this library share so they agree at image borders;
* ``TexFetchDyn`` is a *dependent* fetch whose coordinate is computed by
  the shader itself (used by the final MEI stage to read the pixels the
  max/min stage selected);
* comparison ops return 0.0/1.0 masks and ``Select`` blends per lane,
  which is how branch-free fp30 code expresses conditionals;
* ``Dot`` is the DP4 instruction: a dot product over the four lanes,
  broadcast back to all lanes.

Shared subtrees are evaluated (and costed) once, the way a shader
compiler would assign them a register.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import ShaderValidationError

#: Binary arithmetic/comparison opcodes and their lane-wise meaning.
BINARY_OPS = frozenset({
    "add", "sub", "mul", "div", "min", "max", "cmp_gt", "cmp_ge",
})

#: Unary opcodes.
UNARY_OPS = frozenset({"log", "exp", "neg", "abs", "floor", "rcp", "sqrt"})

_SWIZZLE_LANES = {"x": 0, "y": 1, "z": 2, "w": 3}


class Expr:
    """Base class of all IR nodes.  Nodes are immutable and hashable so
    they can be shared between kernels and memoized during evaluation."""

    __slots__ = ()


@dataclass(frozen=True)
class Const(Expr):
    """A literal float4 (scalars are splatted to all four lanes)."""

    values: tuple[float, float, float, float]

    def __post_init__(self) -> None:
        if len(self.values) != 4:
            raise ShaderValidationError(
                f"Const needs 4 lanes, got {len(self.values)}")
        # IR literals are host-side program text (like constants in a .cg
        # file); the interpreter quantizes them to float32 at execution.
        object.__setattr__(
            self, "values",
            tuple(float(v) for v in self.values))  # reprolint: disable=dtype-discipline


@dataclass(frozen=True)
class Uniform(Expr):
    """A float4 program parameter bound at launch time."""

    name: str


@dataclass(frozen=True)
class TexFetch(Expr):
    """Sample ``sampler`` at (fragment + (dx, dy)), clamp-to-edge.

    ``dx`` moves along image width (samples), ``dy`` along height (lines).
    """

    sampler: str
    dx: int = 0
    dy: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "dx", int(self.dx))
        object.__setattr__(self, "dy", int(self.dy))


@dataclass(frozen=True)
class TexFetchDyn(Expr):
    """Dependent fetch: sample ``sampler`` at an absolute texel coordinate
    computed by ``coord`` (lane x = column, lane y = row, rounded and
    clamped)."""

    sampler: str
    coord: Expr


@dataclass(frozen=True)
class Op(Expr):
    """A lane-wise unary or binary operation."""

    op: str
    args: tuple[Expr, ...]

    def __post_init__(self) -> None:
        if self.op in BINARY_OPS:
            if len(self.args) != 2:
                raise ShaderValidationError(
                    f"{self.op} expects 2 operands, got {len(self.args)}")
        elif self.op in UNARY_OPS:
            if len(self.args) != 1:
                raise ShaderValidationError(
                    f"{self.op} expects 1 operand, got {len(self.args)}")
        else:
            raise ShaderValidationError(f"unknown opcode {self.op!r}")
        for a in self.args:
            if not isinstance(a, Expr):
                raise ShaderValidationError(
                    f"{self.op} operand {a!r} is not an Expr")


@dataclass(frozen=True)
class Dot(Expr):
    """DP4: sum over lanes of a*b, broadcast to all lanes."""

    a: Expr
    b: Expr


@dataclass(frozen=True)
class Swizzle(Expr):
    """Lane shuffle, e.g. ``Swizzle(v, "xxxx")`` broadcasts lane x."""

    source: Expr
    pattern: str

    def __post_init__(self) -> None:
        if len(self.pattern) != 4 or any(c not in _SWIZZLE_LANES
                                         for c in self.pattern):
            raise ShaderValidationError(
                f"swizzle pattern must be 4 chars of xyzw, got "
                f"{self.pattern!r}")

    def lane_indices(self) -> tuple[int, int, int, int]:
        return tuple(_SWIZZLE_LANES[c] for c in self.pattern)  # type: ignore


@dataclass(frozen=True)
class Combine(Expr):
    """Build a float4 from the x lanes of four expressions."""

    x: Expr
    y: Expr
    z: Expr
    w: Expr


@dataclass(frozen=True)
class Select(Expr):
    """Per-lane blend: where ``cond`` != 0 take ``if_true`` else
    ``if_false`` (the CMP instruction pattern)."""

    cond: Expr
    if_true: Expr
    if_false: Expr


@dataclass(frozen=True)
class FragCoord(Expr):
    """The fragment's own integer texel coordinate as a float4
    (x = column, y = row, z = w = 0).  Needed to build dependent-fetch
    coordinates relative to the current pixel."""


ExprLike = Union[Expr, float, int]


def vec4(x: float, y: float | None = None, z: float | None = None,
         w: float | None = None) -> Const:
    """Literal constructor; one argument splats to all lanes."""
    if y is None:
        return Const((x, x, x, x))
    if z is None or w is None:
        raise ShaderValidationError("vec4 takes 1 or 4 components")
    return Const((x, y, z, w))


def _coerce(value: ExprLike) -> Expr:
    if isinstance(value, Expr):
        return value
    # Coercing a host scalar into IR program text, not into texel data.
    return vec4(float(value))  # reprolint: disable=dtype-discipline


def add(a: ExprLike, b: ExprLike) -> Op:
    """Lane-wise addition."""
    return Op("add", (_coerce(a), _coerce(b)))


def sub(a: ExprLike, b: ExprLike) -> Op:
    """Lane-wise subtraction."""
    return Op("sub", (_coerce(a), _coerce(b)))


def mul(a: ExprLike, b: ExprLike) -> Op:
    """Lane-wise multiplication."""
    return Op("mul", (_coerce(a), _coerce(b)))


def div(a: ExprLike, b: ExprLike) -> Op:
    """Lane-wise division."""
    return Op("div", (_coerce(a), _coerce(b)))


def min_(a: ExprLike, b: ExprLike) -> Op:
    """Lane-wise minimum."""
    return Op("min", (_coerce(a), _coerce(b)))


def max_(a: ExprLike, b: ExprLike) -> Op:
    """Lane-wise maximum."""
    return Op("max", (_coerce(a), _coerce(b)))


def cmp_gt(a: ExprLike, b: ExprLike) -> Op:
    """1.0 where a > b else 0.0, per lane."""
    return Op("cmp_gt", (_coerce(a), _coerce(b)))


def cmp_ge(a: ExprLike, b: ExprLike) -> Op:
    """1.0 where a >= b else 0.0, per lane."""
    return Op("cmp_ge", (_coerce(a), _coerce(b)))


def log(a: ExprLike) -> Op:
    """Natural logarithm per lane (LG2 * ln2 on real hardware)."""
    return Op("log", (_coerce(a),))


def exp(a: ExprLike) -> Op:
    """Natural exponential per lane (EX2 * log2 e on real hardware)."""
    return Op("exp", (_coerce(a),))


def floor(a: ExprLike) -> Op:
    """Floor per lane (FLR)."""
    return Op("floor", (_coerce(a),))


def dot4(a: ExprLike, b: ExprLike) -> Dot:
    """DP4: four-lane dot product, broadcast to all lanes."""
    return Dot(_coerce(a), _coerce(b))


def select(cond: ExprLike, if_true: ExprLike, if_false: ExprLike) -> Select:
    """Per-lane conditional blend (the CMP instruction pattern)."""
    return Select(_coerce(cond), _coerce(if_true), _coerce(if_false))


Floor = floor  # exported alias matching the op-constructor naming


def walk(expr: Expr):
    """Yield every node of the tree exactly once (shared subtrees once),
    children before parents."""
    seen: set[int] = set()
    stack: list[tuple[Expr, bool]] = [(expr, False)]
    while stack:
        node, expanded = stack.pop()
        if id(node) in seen:
            continue
        if expanded:
            seen.add(id(node))
            yield node
            continue
        stack.append((node, True))
        for child in children(node):
            if id(child) not in seen:
                stack.append((child, False))


def substitute(expr: Expr, fetch_map=None, uniform_map=None) -> Expr:
    """Rewrite a tree: redirect fetches and rename uniforms.

    ``fetch_map`` maps a sampler name to either ``("rename", name)`` —
    the fetch keeps its offsets but reads another sampler — or
    ``("inline", body)`` — a *zero-offset* fetch is replaced by the
    given expression (the pass-fusion substitution: the producing
    kernel's body takes the place of reading its materialized output).
    Inlining a fetch that carries an offset is rejected: a shifted read
    of a computed image is not the image computed at shifted inputs
    once clamp-to-edge fires, so the compiler must materialize instead.
    ``uniform_map`` renames uniforms.  Untouched subtrees are returned
    as-is, preserving sharing (and therefore memoized evaluation).
    """
    fetch_map = fetch_map or {}
    uniform_map = uniform_map or {}
    cache: dict[int, Expr] = {}

    def rewrite(node: Expr) -> Expr:
        hit = cache.get(id(node))
        if hit is not None:
            return hit
        out = node
        if isinstance(node, TexFetch) and node.sampler in fetch_map:
            action, value = fetch_map[node.sampler]
            if action == "rename":
                out = TexFetch(value, node.dx, node.dy)
            elif action == "inline":
                if node.dx or node.dy:
                    raise ShaderValidationError(
                        f"cannot inline offset fetch of "
                        f"{node.sampler!r} (dx={node.dx}, dy={node.dy})")
                out = value
            else:  # pragma: no cover - defensive
                raise ShaderValidationError(
                    f"unknown fetch action {action!r}")
        elif isinstance(node, TexFetchDyn):
            coord = rewrite(node.coord)
            action, value = fetch_map.get(node.sampler, ("rename",
                                                         node.sampler))
            if action != "rename":
                raise ShaderValidationError(
                    f"cannot inline dependent fetch of {node.sampler!r}")
            if coord is not node.coord or value != node.sampler:
                out = TexFetchDyn(value, coord)
        elif isinstance(node, Uniform) and node.name in uniform_map:
            out = Uniform(uniform_map[node.name])
        elif isinstance(node, Op):
            args = tuple(rewrite(a) for a in node.args)
            if any(n is not o for n, o in zip(args, node.args)):
                out = Op(node.op, args)
        elif isinstance(node, Dot):
            a, b = rewrite(node.a), rewrite(node.b)
            if a is not node.a or b is not node.b:
                out = Dot(a, b)
        elif isinstance(node, Swizzle):
            src = rewrite(node.source)
            if src is not node.source:
                out = Swizzle(src, node.pattern)
        elif isinstance(node, Combine):
            parts = tuple(rewrite(p) for p in
                          (node.x, node.y, node.z, node.w))
            if any(n is not o for n, o in
                   zip(parts, (node.x, node.y, node.z, node.w))):
                out = Combine(*parts)
        elif isinstance(node, Select):
            c, t, f = (rewrite(node.cond), rewrite(node.if_true),
                       rewrite(node.if_false))
            if c is not node.cond or t is not node.if_true \
                    or f is not node.if_false:
                out = Select(c, t, f)
        cache[id(node)] = out
        return out

    return rewrite(expr)


def children(expr: Expr) -> tuple[Expr, ...]:
    """Immediate sub-expressions of a node."""
    if isinstance(expr, Op):
        return expr.args
    if isinstance(expr, Dot):
        return (expr.a, expr.b)
    if isinstance(expr, Swizzle):
        return (expr.source,)
    if isinstance(expr, Combine):
        return (expr.x, expr.y, expr.z, expr.w)
    if isinstance(expr, Select):
        return (expr.cond, expr.if_true, expr.if_false)
    if isinstance(expr, TexFetchDyn):
        return (expr.coord,)
    return ()
