"""The GPU timing model: counted work -> modeled seconds.

The model is the standard bounded-by-compute-or-memory ("roofline") view
of a streaming processor, specialized to a 2003-2005 fragment pipeline:

* **Compute**: each IR instruction costs a number of shader cycles
  (:data:`OP_COSTS`); a launch over F fragments with C cycles/fragment on
  P pipes at clock f takes ``F * C / (P * f * issue_rate)`` seconds.
  Transcendentals (LG2/EX2/RCP) are near-single-cycle on these parts —
  the "fast and accurate transcendental functions" the paper calls out as
  a GPU advantage — so their cost is low but still above a MAD.
* **Memory**: texture fetches are served by the dedicated texture cache
  with a high hit rate for fixed-offset access (2-D blocked prefetching
  [7]); only misses and the render-target write consume board bandwidth.
  Dependent fetches miss far more often.
* A launch costs ``max(compute, memory) + launch_overhead`` — the deeply
  pipelined design overlaps the two streams almost perfectly.
* **Transfers** move ``bytes`` over the bus at its sustained bandwidth
  plus a fixed latency; AGP8x vs PCIe x16 is one of the two headline
  differences between the paper's boards.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError
from repro.gpu import shaderir as ir
from repro.gpu.shader import FragmentShader
from repro.gpu.spec import GpuSpec
from repro.gpu.texture import TEXEL_BYTES

#: Shader cycles per IR instruction (float4-wide).
OP_COSTS: dict[str, float] = {
    # lane-wise arithmetic — single-issue MAD class
    "add": 1.0, "sub": 1.0, "mul": 1.0, "min": 1.0, "max": 1.0,
    "cmp_gt": 1.0, "cmp_ge": 1.0, "neg": 1.0, "abs": 1.0, "floor": 1.0,
    # special-function unit: LG2/EX2/RCP are near full rate on NV3x/G7x —
    # the "fast and accurate transcendental functions" the paper credits
    # GPUs with (§1)
    "log": 1.0, "exp": 1.0, "rcp": 1.5, "sqrt": 1.5, "div": 2.0,
    # DP4 is one instruction
    "dot": 1.0,
    # blend / pack
    "select": 1.0, "combine": 1.0,
    # texture instructions: the dedicated, deeply pipelined texture units
    # run in parallel with the ALUs [7], so a fixed-offset fetch costs
    # only its issue slot; dependent fetches stall the pipeline
    "tex": 0.25, "tex_dyn": 1.0,
}


@dataclass(frozen=True)
class KernelCost:
    """Static per-fragment cost of a shader."""

    cycles_per_fragment: float
    static_fetches: int
    dynamic_fetches: int


@dataclass(frozen=True)
class LaunchTiming:
    """Timing breakdown of one launch."""

    compute_s: float
    memory_s: float
    total_s: float


class CostModel:
    """Evaluates kernel and transfer costs for one :class:`GpuSpec`.

    ``cache_kernel_costs`` memoizes :meth:`kernel_cost` per shader
    object — the cost is a pure function of the (immutable) shader, so
    the modeled numbers are unchanged; only the per-launch IR walk is
    skipped.  The fused device path enables it; the ``optimize="none"``
    oracle keeps the historical walk-every-launch behaviour.
    """

    def __init__(self, spec: GpuSpec, *, cache_kernel_costs: bool = False):
        self.spec = spec
        self._cache_kernel_costs = cache_kernel_costs
        # id -> (shader, cost); the shader ref keeps the id stable.
        self._kernel_costs: dict[int, tuple[FragmentShader, KernelCost]] = {}

    # ------------------------------------------------------------- kernels
    @staticmethod
    def kernel_cost(shader: FragmentShader) -> KernelCost:
        """Sum the per-instruction cycle costs of a shader body.

        Shared subtrees are counted once (they occupy one register), the
        same convention the interpreter uses for evaluation.
        """
        cycles = 0.0
        for node in ir.walk(shader.body):
            if isinstance(node, ir.Op):
                cycles += OP_COSTS[node.op]
            elif isinstance(node, ir.Dot):
                cycles += OP_COSTS["dot"]
            elif isinstance(node, ir.Select):
                cycles += OP_COSTS["select"]
            elif isinstance(node, ir.Combine):
                cycles += OP_COSTS["combine"]
            elif isinstance(node, ir.TexFetch):
                cycles += OP_COSTS["tex"]
            elif isinstance(node, ir.TexFetchDyn):
                cycles += OP_COSTS["tex_dyn"]
            # Const / Uniform / Swizzle / FragCoord: register reads, free.
        stats = shader.stats
        return KernelCost(cycles_per_fragment=cycles,
                          static_fetches=stats.static_fetches,
                          dynamic_fetches=stats.dynamic_fetches)

    def _cost_of(self, shader: FragmentShader) -> KernelCost:
        """:meth:`kernel_cost`, through the per-shader cache if enabled."""
        if not self._cache_kernel_costs:
            return self.kernel_cost(shader)
        entry = self._kernel_costs.get(id(shader))
        if entry is None or entry[0] is not shader:
            entry = (shader, self.kernel_cost(shader))
            self._kernel_costs[id(shader)] = entry
        return entry[1]

    def _timing(self, cost: KernelCost, width: int,
                height: int) -> LaunchTiming:
        """Roofline timing of one pass: max(compute, memory) + overhead."""
        fragments = width * height
        spec = self.spec
        compute_s = (fragments * cost.cycles_per_fragment
                     / (spec.n_fragment_pipes * spec.core_clock_hz
                        * spec.issue_rate))
        miss_bytes_per_fragment = TEXEL_BYTES * (
            cost.static_fetches * (1.0 - spec.texture_cache_hit_rate)
            + cost.dynamic_fetches * (1.0 - spec.dependent_fetch_hit_rate))
        # The render-target write always goes to board memory.
        bytes_per_fragment = miss_bytes_per_fragment + TEXEL_BYTES
        memory_s = fragments * bytes_per_fragment / spec.mem_bandwidth
        total = max(compute_s, memory_s) + spec.launch_overhead_s
        return LaunchTiming(compute_s=compute_s, memory_s=memory_s,
                            total_s=total)

    def launch_time(self, shader: FragmentShader, width: int,
                    height: int) -> tuple[KernelCost, LaunchTiming]:
        """Modeled wall time of one launch over ``width x height``."""
        cost = self._cost_of(shader)
        return cost, self._timing(cost, width, height)

    def fused_launch_time(self, shaders, width: int,
                          height: int) -> tuple[KernelCost, LaunchTiming]:
        """Modeled wall time of one *fused* launch.

        The constituent parts' compute cycles and fetch counts sum —
        every instruction of the original chain still executes — but
        the pass pays a single render-target write and a single launch
        overhead instead of one per member: exactly the savings pass
        fusion buys on hardware (intermediates stay in registers or
        launch-local storage, never in board memory).
        """
        cycles = 0.0
        static_fetches = 0
        dynamic_fetches = 0
        for shader in shaders:
            part = self._cost_of(shader)
            cycles += part.cycles_per_fragment
            static_fetches += part.static_fetches
            dynamic_fetches += part.dynamic_fetches
        cost = KernelCost(cycles_per_fragment=cycles,
                          static_fetches=static_fetches,
                          dynamic_fetches=dynamic_fetches)
        return cost, self._timing(cost, width, height)

    # ----------------------------------------------------------- transfers
    def transfer_time(self, nbytes: int) -> float:
        """Modeled host<->device transfer time for ``nbytes``."""
        if nbytes < 0:
            raise ValidationError(f"nbytes must be >= 0, got {nbytes}")
        return self.spec.transfer_latency_s + nbytes / self.spec.bus_bandwidth
