"""Cg source emission from shader IR.

The paper's kernels were "hand-coded using Cg [5], and all Cg fragment
programs were compiled using the profile fp30".  The simulator executes
an IR instead — this module closes the loop by *emitting* the equivalent
Cg fragment program for any validated shader, so every kernel in the
pipeline can be inspected in the language the paper's implementation was
written in (and, on a machine with a real driver, compiled with
``cgc -profile fp30``).

Emission rules:

* every IR node that costs an instruction becomes one assignment to a
  fresh ``float4`` register, in dependency order (shared subtrees emit
  once — the same register-allocation convention the validator and the
  cost model use);
* static texture fetches become ``tex2D(sampler, uv + float2(dx,dy)*texel)``
  against the declared texel-size uniform;
* dependent fetches compute their coordinate in full and fetch through it;
* comparisons and ``Select`` lower to the fp30 idiom (``(a > b) ? 1 : 0``
  vectorized via ``step``/``lerp``-free ternaries Cg accepts on float4).
"""

from __future__ import annotations

from repro.errors import ShaderError
from repro.gpu import shaderir as ir
from repro.gpu.shader import FragmentShader

_BINARY_INFIX = {"add": "+", "sub": "-", "mul": "*", "div": "/"}
_BINARY_FUNC = {"min": "min", "max": "max"}
_UNARY_FUNC = {"log": "log", "exp": "exp", "abs": "abs", "floor": "floor",
               "sqrt": "sqrt"}


class _Emitter:
    def __init__(self, shader: FragmentShader):
        self.shader = shader
        self.lines: list[str] = []
        self.names: dict[int, str] = {}
        self.counter = 0

    def _fresh(self, node: ir.Expr) -> str:
        name = f"r{self.counter}"
        self.counter += 1
        self.names[id(node)] = name
        return name

    def ref(self, node: ir.Expr) -> str:
        """Expression referencing an already-emitted node (leaves inline)."""
        if isinstance(node, ir.Const):
            vals = ", ".join(f"{v:g}" for v in node.values)
            return f"float4({vals})"
        if isinstance(node, ir.Uniform):
            return node.name
        if isinstance(node, ir.FragCoord):
            # uv in [0,1] -> integer texel coordinates
            return "float4(uv / texel - 0.5, 0.0, 0.0)"
        return self.names[id(node)]

    def emit(self, node: ir.Expr) -> None:
        if id(node) in self.names or isinstance(
                node, (ir.Const, ir.Uniform, ir.FragCoord)):
            return
        if isinstance(node, ir.TexFetch):
            name = self._fresh(node)
            if node.dx == 0 and node.dy == 0:
                coord = "uv"
            else:
                coord = f"uv + float2({node.dx}, {node.dy}) * texel"
            self.lines.append(
                f"    float4 {name} = tex2D({node.sampler}, {coord});")
        elif isinstance(node, ir.TexFetchDyn):
            name = self._fresh(node)
            coord = self.ref(node.coord)
            self.lines.append(
                f"    float4 {name} = tex2D({node.sampler}, "
                f"(({coord}).xy + 0.5) * texel);")
        elif isinstance(node, ir.Op):
            name = self._fresh(node)
            args = [self.ref(a) for a in node.args]
            if node.op in _BINARY_INFIX:
                expr = f"{args[0]} {_BINARY_INFIX[node.op]} {args[1]}"
            elif node.op in _BINARY_FUNC:
                expr = f"{_BINARY_FUNC[node.op]}({args[0]}, {args[1]})"
            elif node.op == "cmp_gt":
                expr = (f"float4({args[0]}.x > {args[1]}.x, "
                        f"{args[0]}.y > {args[1]}.y, "
                        f"{args[0]}.z > {args[1]}.z, "
                        f"{args[0]}.w > {args[1]}.w)")
            elif node.op == "cmp_ge":
                expr = f"step({args[1]}, {args[0]})"
            elif node.op in _UNARY_FUNC:
                expr = f"{_UNARY_FUNC[node.op]}({args[0]})"
            elif node.op == "neg":
                expr = f"-{args[0]}"
            elif node.op == "rcp":
                expr = f"1.0 / {args[0]}"
            else:  # pragma: no cover - validator forbids unknown ops
                raise ShaderError(f"cannot emit op {node.op!r}")
            self.lines.append(f"    float4 {name} = {expr};")
        elif isinstance(node, ir.Dot):
            name = self._fresh(node)
            self.lines.append(
                f"    float4 {name} = dot({self.ref(node.a)}, "
                f"{self.ref(node.b)}).xxxx;")
        elif isinstance(node, ir.Swizzle):
            name = self._fresh(node)
            self.lines.append(
                f"    float4 {name} = {self.ref(node.source)}."
                f"{node.pattern};")
        elif isinstance(node, ir.Combine):
            name = self._fresh(node)
            parts = ", ".join(f"{self.ref(p)}.x"
                              for p in (node.x, node.y, node.z, node.w))
            self.lines.append(f"    float4 {name} = float4({parts});")
        elif isinstance(node, ir.Select):
            name = self._fresh(node)
            cond = self.ref(node.cond)
            self.lines.append(
                f"    float4 {name} = lerp({self.ref(node.if_false)}, "
                f"{self.ref(node.if_true)}, {cond});")
        else:  # pragma: no cover - walk() covers every node type
            raise ShaderError(f"cannot emit node {type(node).__name__}")


def emit_cg(shader: FragmentShader) -> str:
    """Render a validated shader as an fp30 Cg fragment program.

    The generated program takes the interpolated texture coordinate
    ``uv``, one ``sampler2D`` per declared sampler, one ``float4`` per
    declared uniform, plus the implicit ``texel`` uniform (1/width,
    1/height) used for offset addressing.
    """
    emitter = _Emitter(shader)
    for node in ir.walk(shader.body):
        emitter.emit(node)

    params = ["float2 uv : TEXCOORD0"]
    params += [f"uniform sampler2D {name}" for name in shader.samplers]
    params += [f"uniform float4 {name}" for name in shader.uniforms]
    params += ["uniform float2 texel"]
    header = ",\n    ".join(params)
    body = "\n".join(emitter.lines) if emitter.lines else ""
    result = emitter.ref(shader.body)
    return (f"// kernel: {shader.name} (emitted from repro IR, "
            f"profile fp30)\n"
            f"float4 {shader.name.replace('-', '_')}(\n"
            f"    {header}) : COLOR\n"
            f"{{\n"
            f"{body}\n"
            f"    return {result};\n"
            f"}}\n")


def emit_pipeline_kernels(radius: int = 1, fuse_groups: int = 6,
                          bands: int = 224) -> dict[str, str]:
    """Emit Cg source for every kernel of the AMC stream pipeline.

    Convenience for inspection/export: the same shader set
    :func:`repro.core.amc_gpu.gpu_morphological_stage` launches.
    """
    from repro.core.amc_gpu import _batches, _kernels
    from repro.gpu.texture import band_group_count
    from repro.spectral.normalize import SpectralEpsilon

    groups = band_group_count(bands)
    widths = tuple(sorted({w for _, w in _batches(groups, fuse_groups)}))
    shaders = _kernels(radius, SpectralEpsilon.get(), widths)
    return {name: emit_cg(shader) for name, shader in shaders.items()}
