"""VRAM accounting for the virtual GPU.

The paper's chunking strategy exists because a 500 MB scene does not fit
a 256 MB board.  To make that pressure real in the simulation, every
texture allocation goes through this allocator; exceeding the configured
capacity raises :class:`~repro.errors.GpuOutOfMemoryError`, which is what
forces the stream executor to chunk.

The allocator is deliberately simple — a byte counter plus a handle
table — because fragmentation effects are not part of any claim the paper
makes.  High-water-mark tracking is included since the chunk planner's
budget logic is tested against it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import (GpuOutOfMemoryError, UnknownHandleError,
                          ValidationError)


@dataclass
class VramAllocator:
    """Byte-level accounting of device memory."""

    capacity: int
    _allocations: dict[int, int] = field(default_factory=dict)
    _ids: "itertools.count" = field(default_factory=itertools.count)
    high_water_mark: int = 0

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValidationError(f"capacity must be positive, got {self.capacity}")

    @property
    def used(self) -> int:
        """Bytes currently allocated."""
        return sum(self._allocations.values())

    @property
    def free(self) -> int:
        """Bytes still available."""
        return self.capacity - self.used

    @property
    def allocation_count(self) -> int:
        """Number of live allocations."""
        return len(self._allocations)

    def allocate(self, nbytes: int, *, label: str = "") -> int:
        """Reserve ``nbytes``; returns an opaque handle.

        Raises
        ------
        GpuOutOfMemoryError
            If the request exceeds the remaining capacity.
        """
        if nbytes <= 0:
            raise ValidationError(f"allocation must be positive, got {nbytes}")
        if nbytes > self.free:
            raise GpuOutOfMemoryError(
                f"cannot allocate {nbytes} bytes{f' for {label}' if label else ''}: "
                f"{self.used}/{self.capacity} bytes in use "
                f"({self.free} free)",
                requested=nbytes, free=self.free, capacity=self.capacity)
        handle = next(self._ids)
        self._allocations[handle] = nbytes
        self.high_water_mark = max(self.high_water_mark, self.used)
        return handle

    def release(self, handle: int) -> None:
        """Free an allocation.  Double-free raises ``KeyError``."""
        try:
            del self._allocations[handle]
        except KeyError:
            raise UnknownHandleError(f"handle {handle} is not a live allocation") from None

    def release_all(self) -> None:
        """Free everything (end of a chunk's lifetime)."""
        self._allocations.clear()
