"""Vectorized execution of fragment shaders.

The interpreter evaluates a shader body over the whole render target at
once: every IR node becomes one NumPy operation on (H, W, 4) float32
arrays, so the *data* computed is bit-comparable to what a real float32
fragment pipeline produces while remaining fast enough to process
realistic scenes on one CPU core.

Clamp-to-edge addressing is implemented with clipped index arrays; the
row/column index vectors are cached per (extent, offset) so repeated
fixed-offset fetches (the overwhelmingly common case in the AMC kernels)
cost one fancy-indexing gather each — or, on the fused fast path
(``optimize="fuse"``), a strided interior copy with broadcast edge
bands that yields byte-identical texels several times faster.

Shared subtrees are evaluated once per launch via a *structurally*
keyed memo (IR nodes are immutable and hashable), mirroring the
register allocation a shader compiler performs.  Keying on structure
rather than object identity means equal-but-distinct subtrees — the
kind mechanical graph builders emit — also evaluate once.
"""

from __future__ import annotations

import numpy as np

from repro.core.shifts import clamped_indices, shifted_copy
from repro.errors import ShaderError
from repro.gpu import shaderir as ir
from repro.gpu.shader import FragmentShader

_F32 = np.float32


def _fetch_static(texture: np.ndarray, dx: int, dy: int,
                  fast: bool = False) -> np.ndarray:
    """Clamp-to-edge fetch at constant offset; zero offset is a no-copy
    view.

    The clipped index vectors come from the shared, cached
    :func:`repro.core.shifts.clamped_indices` helper — the same
    addressing every CPU implementation uses.  ``fast`` routes through
    :func:`repro.core.shifts.shifted_copy` instead: byte-identical
    texels from strided copies rather than a fancy-indexing gather."""
    if dx == 0 and dy == 0:
        return texture
    if fast:
        return shifted_copy(texture, dy, dx)
    h, w = texture.shape[:2]
    rows = clamped_indices(h, dy)
    cols = clamped_indices(w, dx)
    return texture[np.ix_(rows, cols)]


class ShaderContext:
    """Bindings for one launch: textures, uniforms and the target size.

    ``fast_fetch`` selects the strided fixed-offset fetch (the device's
    ``optimize="fuse"`` mode); texel values are identical either way.
    """

    def __init__(self, height: int, width: int,
                 textures: dict[str, np.ndarray],
                 uniforms: dict[str, np.ndarray],
                 fast_fetch: bool = False):
        self.height = height
        self.width = width
        self.textures = textures
        self.uniforms = uniforms
        self.fast_fetch = fast_fetch
        self._fragcoord: np.ndarray | None = None

    def fragcoord(self) -> np.ndarray:
        """(H, W, 4) float32 with lane x = column index, y = row index."""
        if self._fragcoord is None:
            coords = np.zeros((self.height, self.width, 4), dtype=_F32)
            coords[:, :, 0] = np.arange(self.width, dtype=_F32)[None, :]
            coords[:, :, 1] = np.arange(self.height, dtype=_F32)[:, None]
            self._fragcoord = coords
        return self._fragcoord


def _eval(node: ir.Expr, ctx: ShaderContext,
          memo: dict[ir.Expr, np.ndarray]) -> np.ndarray:
    # Structural key: IR nodes are frozen dataclasses, so equal subtrees
    # — even distinct objects built twice by a mechanical graph builder —
    # share one evaluation per launch.
    cached = memo.get(node)
    if cached is not None:
        return cached
    out = _eval_uncached(node, ctx, memo)
    memo[node] = out
    return out


def _eval_uncached(node: ir.Expr, ctx: ShaderContext,
                   memo: dict[ir.Expr, np.ndarray]) -> np.ndarray:
    if isinstance(node, ir.Const):
        return np.array(node.values, dtype=_F32)  # broadcasts over (H, W, 4)
    if isinstance(node, ir.Uniform):
        return ctx.uniforms[node.name]
    if isinstance(node, ir.FragCoord):
        return ctx.fragcoord()
    if isinstance(node, ir.TexFetch):
        return _fetch_static(ctx.textures[node.sampler], node.dx, node.dy,
                             fast=ctx.fast_fetch)
    if isinstance(node, ir.TexFetchDyn):
        coord = _eval(node.coord, ctx, memo)
        tex = ctx.textures[node.sampler]
        h, w = tex.shape[:2]
        coord = np.broadcast_to(coord, (ctx.height, ctx.width, 4))
        cols = np.clip(np.rint(coord[:, :, 0]).astype(np.intp), 0, w - 1)
        rows = np.clip(np.rint(coord[:, :, 1]).astype(np.intp), 0, h - 1)
        return tex[rows, cols]
    if isinstance(node, ir.Op):
        a = _eval(node.args[0], ctx, memo)
        if node.op in ir.UNARY_OPS:
            if node.op == "log":
                # fp30 LG2 returns -inf for 0 and NaN for negatives; the
                # library's kernels always clamp first, but the simulator
                # must not crash on raw hardware semantics either.
                with np.errstate(divide="ignore", invalid="ignore"):
                    return np.log(a)
            if node.op == "exp":
                return np.exp(a)
            if node.op == "neg":
                return -a
            if node.op == "abs":
                return np.abs(a)
            if node.op == "floor":
                return np.floor(a)
            if node.op == "rcp":
                with np.errstate(divide="ignore", invalid="ignore"):
                    return (np.float32(1.0) / a).astype(_F32, copy=False)
            if node.op == "sqrt":
                with np.errstate(invalid="ignore"):
                    return np.sqrt(a)
            raise ShaderError(f"unhandled unary op {node.op!r}")
        b = _eval(node.args[1], ctx, memo)
        if node.op == "add":
            return a + b
        if node.op == "sub":
            return a - b
        if node.op == "mul":
            return a * b
        if node.op == "div":
            with np.errstate(divide="ignore", invalid="ignore"):
                return a / b
        if node.op == "min":
            return np.minimum(a, b)
        if node.op == "max":
            return np.maximum(a, b)
        if node.op == "cmp_gt":
            return (a > b).astype(_F32)
        if node.op == "cmp_ge":
            return (a >= b).astype(_F32)
        raise ShaderError(f"unhandled binary op {node.op!r}")
    if isinstance(node, ir.Dot):
        a = _eval(node.a, ctx, memo)
        b = _eval(node.b, ctx, memo)
        prod = a * b
        summed = prod.sum(axis=-1, dtype=_F32, keepdims=True)
        return np.broadcast_to(summed, prod.shape if prod.ndim == 3
                               else (4,)).astype(_F32, copy=False)
    if isinstance(node, ir.Swizzle):
        src = _eval(node.source, ctx, memo)
        idx = list(node.lane_indices())
        return src[..., idx]
    if isinstance(node, ir.Combine):
        parts = [_eval(p, ctx, memo) for p in
                 (node.x, node.y, node.z, node.w)]
        shape = (ctx.height, ctx.width, 4)
        lanes = [np.broadcast_to(p, shape)[..., 0] for p in parts]
        return np.stack(lanes, axis=-1).astype(_F32, copy=False)
    if isinstance(node, ir.Select):
        cond = _eval(node.cond, ctx, memo)
        t = _eval(node.if_true, ctx, memo)
        f = _eval(node.if_false, ctx, memo)
        return np.where(cond != 0, t, f).astype(_F32, copy=False)
    raise ShaderError(f"unknown IR node type {type(node).__name__}")


def execute(shader: FragmentShader, height: int, width: int,
            textures: dict[str, np.ndarray],
            uniforms: dict[str, np.ndarray] | None = None) -> np.ndarray:
    """Run ``shader`` over an ``height x width`` render target.

    Parameters
    ----------
    shader:
        A validated program.
    height, width:
        Render-target extents.
    textures:
        Sampler name -> (H', W', 4) float32 array.  Samplers with the
        target's extents are fetched with offsets; dependent fetches may
        target any extent.
    uniforms:
        Uniform name -> length-4 float vector.

    Returns
    -------
    numpy.ndarray
        The (height, width, 4) float32 render-target contents.

    Raises
    ------
    ShaderError
        If a binding is missing or a texture has the wrong shape for
        offset addressing.
    """
    result = execute_lazy(shader, height, width, textures, uniforms)
    out = np.empty((height, width, 4), dtype=_F32)
    out[...] = result  # broadcasts constants / uniforms to full extent
    return out


def execute_lazy(shader: FragmentShader, height: int, width: int,
                 textures: dict[str, np.ndarray],
                 uniforms: dict[str, np.ndarray] | None = None,
                 *, fast_fetch: bool = False) -> np.ndarray:
    """Like :func:`execute` but returns the raw evaluation result.

    The values are the same float32 texels; the array may be smaller
    than the full target (a constant or uniform result broadcasts) and
    may *alias an input texture* (a zero-offset copy kernel).  Callers
    own the final materialization — :meth:`VirtualGPU.launch
    <repro.gpu.device.VirtualGPU.launch>` broadcasts the result into
    the target texture directly, eliding the interpreter's scratch
    temporary on the device's ``optimize="fuse"`` path.
    """
    tex_arrays = _coerce_textures(shader.name, shader.samplers, textures)
    uni_arrays = _coerce_uniforms(shader.name, shader.uniforms, uniforms)
    ctx = ShaderContext(height, width, tex_arrays, uni_arrays,
                        fast_fetch=fast_fetch)
    memo: dict[ir.Expr, np.ndarray] = {}
    return _eval(shader.body, ctx, memo)


def _coerce_textures(kernel: str, samplers, textures) -> dict[str, np.ndarray]:
    """Check and float32-coerce the texture bindings of one launch."""
    missing = [s for s in samplers if s not in textures]
    if missing:
        raise ShaderError(
            f"launch of {kernel!r} missing texture bindings {missing}")
    tex_arrays: dict[str, np.ndarray] = {}
    for name in samplers:
        arr = np.asarray(textures[name], dtype=_F32)
        if arr.ndim != 3 or arr.shape[2] != 4:
            raise ShaderError(
                f"texture {name!r} must be (H, W, 4), got {arr.shape}")
        tex_arrays[name] = arr
    return tex_arrays


def _coerce_uniforms(kernel: str, declared, uniforms) -> dict[str, np.ndarray]:
    """Check and 4-vector-coerce the uniform bindings of one launch."""
    missing = [u for u in declared
               if uniforms is None or u not in uniforms]
    if missing:
        raise ShaderError(
            f"launch of {kernel!r} missing uniforms {missing}")
    uni_arrays: dict[str, np.ndarray] = {}
    if uniforms:
        for name, value in uniforms.items():
            v = np.asarray(value, dtype=_F32).reshape(-1)
            if v.size == 1:
                v = np.repeat(v, 4)
            if v.size != 4:
                raise ShaderError(
                    f"uniform {name!r} must have 1 or 4 components, "
                    f"got {v.size}")
            uni_arrays[name] = v
    return uni_arrays


def execute_fused_lazy(part_shaders, part_names, height: int, width: int,
                       textures: dict[str, np.ndarray],
                       uniforms: dict[str, np.ndarray] | None = None,
                       *, fast_fetch: bool = False) -> np.ndarray:
    """Evaluate a fused kernel's parts under one shared context.

    ``part_shaders`` / ``part_names`` come from a
    :class:`~repro.stream.kernel.FusedKernel`: each part is evaluated
    in order, non-final parts materialized to full extent and
    registered as in-launch textures under their stream name (so later
    parts fetch them at fixed offsets with clamp-to-edge semantics
    identical to a real intermediate texture), and the final part's raw
    result returned as in :func:`execute_lazy`.

    The single :class:`ShaderContext` and structurally-keyed memo are
    shared across *all* parts — a fetch or uniform-only subexpression
    appearing in several members evaluates once per fused launch
    instead of once per original pass (the hoisting the fusion compiler
    promises).
    """
    label = part_names[-1] if part_names else "fused"
    external = [s for shader in part_shaders for s in shader.samplers
                if s not in part_names]
    declared = [u for shader in part_shaders for u in shader.uniforms]
    tex_arrays = _coerce_textures(label, dict.fromkeys(external), textures)
    uni_arrays = _coerce_uniforms(label, dict.fromkeys(declared), uniforms)

    ctx = ShaderContext(height, width, tex_arrays, uni_arrays,
                        fast_fetch=fast_fetch)
    memo: dict[ir.Expr, np.ndarray] = {}
    for shader, name in zip(part_shaders[:-1], part_names[:-1]):
        part = np.empty((height, width, 4), dtype=_F32)
        part[...] = _eval(shader.body, ctx, memo)
        ctx.textures[name] = part
    return _eval(part_shaders[-1].body, ctx, memo)


def execute_fused(part_shaders, part_names, height: int, width: int,
                  textures: dict[str, np.ndarray],
                  uniforms: dict[str, np.ndarray] | None = None) -> np.ndarray:
    """Like :func:`execute_fused_lazy`, materialized to (H, W, 4).

    The host-side (CPU executor) entry point; the device broadcasts the
    lazy result straight into its render target instead.
    """
    result = execute_fused_lazy(part_shaders, part_names, height, width,
                                textures, uniforms)
    out = np.empty((height, width, 4), dtype=_F32)
    out[...] = result
    return out
