"""The paper's published evaluation numbers, transcribed verbatim.

Single source of truth for every paper-vs-measured comparison: the
benches print these next to the reproduction's numbers, EXPERIMENTS.md
cites them, and the tests assert the *ratio* structure against them.
Values are exactly as printed in the paper (including its internal
inconsistencies — see EXPERIMENTS.md).
"""

from __future__ import annotations

import numpy as np

#: Table 3 — classification accuracy (%) per ground-truth class.
PAPER_TABLE3_ACCURACY: dict[str, float] = {
    "BareSoil": 98.05,
    "Buildings": 30.43,
    "Concrete/Asphalt": 96.24,
    "Corn": 99.37,
    "Corn?": 86.77,
    "Corn-EW": 37.01,
    "Corn-NS": 91.50,
    "Corn-CleanTill": 65.39,
    "Corn-CleanTill-EW": 69.88,
    "Corn-CleanTill-NS": 71.64,
    "Corn-CleanTill-NS-Irrigated": 60.91,
    "Corn-CleanTilled-NS?": 70.27,
    "Corn-MinTill": 79.71,
    "Corn-MinTill-EW": 65.51,
    "Corn-MinTill-NS": 69.57,
    "Corn-NoTill": 87.20,
    "Corn-NoTill-EW": 91.25,
    "Corn-NoTill-NS": 44.64,
    "Fescue": 42.37,
    "Grass": 70.15,
    "Grass/Trees": 51.30,
    "Grass/Pasture-mowed": 79.87,
    "Grass/Pasture": 66.40,
    "Grass-runway": 60.53,
    "Hay": 62.13,
    "Hay?": 61.98,
    "Hay-Alfalfa": 83.35,
    "Lake": 83.41,
    "NotCropped": 99.20,
    "Oats": 78.04,
    "Road": 86.60,
    "Woods": 88.89,
}

#: Table 3 — the reported overall accuracy (%).
PAPER_TABLE3_OVERALL: float = 72.35

#: Tables 4/5 column order.
PAPER_PLATFORM_ORDER: tuple[str, ...] = ("P4 C", "Prescott", "FX5950 U",
                                         "7800 GTX")

#: Table 4 — execution time (ms), gcc 4.0 builds.  size MB -> columns.
PAPER_TABLE4_GCC_MS: dict[int, tuple[float, float, float, float]] = {
    68: (91.7453, 84.0052, 6.79324, 1.55211),
    136: (183.32, 167.852, 19.572, 3.067),
    205: (274.818, 251.427, 29.2864, 4.57477),
    273: (367.485, 336.239, 39.0221, 6.0956),
    410: (550.158, 502.935, 40.4066, 9.16738),
    547: (734.243, 671.157, 53.9204, 12.1771),
}

#: Table 5 — execution time (ms), icc 9.0 builds.
PAPER_TABLE5_ICC_MS: dict[int, tuple[float, float, float, float]] = {
    68: (55.5, 46.7, 6.79324, 1.55211),
    136: (110.7, 93.2, 19.572, 3.067),
    205: (166.2, 139.7, 29.2864, 4.57477),
    273: (222.2, 186.4, 39.0221, 6.0956),
    410: (332.6, 279.4, 40.4066, 9.16738),
    547: (444.1, 372.8, 53.9204, 12.1771),
}


def paper_speedups(table: dict[int, tuple[float, float, float, float]]
                   ) -> dict[str, float]:
    """Mean-over-sizes platform ratios of a paper table, in the same keys
    as :func:`repro.bench.scaling.speedup_summary` — what the paper's
    numbers *imply*, for side-by-side comparison with the model's."""
    rows = np.array([table[k] for k in sorted(table)])
    p4, prescott, fx, gtx = rows.T
    return {
        "p4_over_7800": float(np.mean(p4 / gtx)),
        "prescott_over_7800": float(np.mean(prescott / gtx)),
        "p4_over_fx5950": float(np.mean(p4 / fx)),
        "fx5950_over_7800": float(np.mean(fx / gtx)),
        "p4_over_prescott": float(np.mean(p4 / prescott)),
    }


def paper_scaling_slopes(table: dict[int, tuple[float, float, float, float]]
                         ) -> dict[str, float]:
    """Per-platform time(547)/time(68) ratios (linear scaling ⇒ ~8)."""
    sizes = sorted(table)
    first = np.array(table[sizes[0]])
    last = np.array(table[sizes[-1]])
    return dict(zip(PAPER_PLATFORM_ORDER, (last / first).tolist()))
