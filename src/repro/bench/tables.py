"""Fixed-width formatting for benchmark tables and figure series.

Every ``benchmarks/bench_*.py`` prints through these helpers so its
output is visually comparable to the paper's tables and easy to diff
across runs.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ValidationError


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]], *,
                 col_width: int = 14) -> str:
    """Render a titled fixed-width table.

    ``rows`` cells may be strings or numbers; floats are printed with 4
    significant decimals the way the paper's tables are.  ``col_width``
    is a minimum — columns widen to fit their longest cell.
    """
    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    for row in rows:
        if len(row) != len(headers):
            raise ValidationError(
                f"row has {len(row)} cells for {len(headers)} headers")
    rendered = [[cell(v) for v in row] for row in rows]
    widths = [max(col_width, len(h) + 2,
                  *(len(r[i]) + 2 for r in rendered)) if rendered
              else max(col_width, len(h) + 2)
              for i, h in enumerate(headers)]
    lines = [title, "=" * max(len(title), 8)]
    lines.append("".join(f"{h:<{w}}" for h, w in zip(headers, widths)))
    lines.append("-" * sum(widths))
    for row in rendered:
        lines.append("".join(f"{v:<{w}}" for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(title: str, x_label: str, x_values: Sequence[object],
                  series: dict[str, Sequence[float]]) -> str:
    """Render figure data as one labelled series per line.

    The layout ("x: y1 y2 ...") regenerates a figure's plotted points as
    text, which is how this reproduction reports figures without a
    plotting stack.
    """
    lengths = {name: len(vals) for name, vals in series.items()}
    if any(n != len(x_values) for n in lengths.values()):
        raise ValidationError(
            f"series lengths {lengths} do not match {len(x_values)} x values")
    width = max(len(x_label), *(len(str(x)) for x in x_values)) + 2
    name_width = max(len(n) for n in series) + 2
    lines = [title, "=" * max(len(title), 8)]
    header = f"{x_label:<{width}}" + "".join(
        f"{name:<{max(name_width, 14)}}" for name in series)
    lines.append(header)
    lines.append("-" * len(header))
    for i, x in enumerate(x_values):
        row = f"{str(x):<{width}}"
        for name in series:
            row += f"{series[name][i]:<{max(name_width, 14)}.4g}"
        lines.append(row)
    return "\n".join(lines)
