"""Benchmark harness support.

* :mod:`~repro.bench.model` — analytic projection of the GPU stream
  pipeline and the CPU builds to arbitrary image sizes and any
  device spec.  The GPU projection reproduces the virtual device's
  counters *exactly* (a test asserts it), so projecting to the paper's
  68-547 MB scenes is extrapolation of audited counts, not curve
  fitting.
* :mod:`~repro.bench.scaling` — the image-size sweep of Tables 4-5: the
  paper's six crop sizes, measured wall-clock runs at reduced scale and
  modeled milliseconds at paper scale.
* :mod:`~repro.bench.tables` — fixed-width table/series formatting used
  by every ``benchmarks/bench_*.py`` so the printed output lines up with
  the paper's layout.
"""

from repro.bench.model import (
    GpuTimeBreakdown,
    launch_catalogue,
    project_cpu_time,
    project_gpu_time,
)
from repro.bench.scaling import (
    PAPER_FULL_SCENE,
    PAPER_SIZE_FRACTIONS,
    SizePoint,
    paper_size_points,
    platform_matrix,
)
from repro.bench.tables import format_series, format_table

__all__ = [
    "GpuTimeBreakdown",
    "PAPER_FULL_SCENE",
    "PAPER_SIZE_FRACTIONS",
    "SizePoint",
    "format_series",
    "format_table",
    "launch_catalogue",
    "paper_size_points",
    "platform_matrix",
    "project_cpu_time",
    "project_gpu_time",
]
