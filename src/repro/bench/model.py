"""Analytic performance projection for the Tables 4-5 / Figure 6 benches.

The virtual GPU *executes* every kernel, so at sizes this host can hold
the modeled time comes straight from counters.  The paper's sizes
(68-547 MB) exceed this host's memory, so the benches project instead:
:func:`launch_catalogue` enumerates exactly the launches
:func:`repro.core.amc_gpu.gpu_morphological_stage` performs for a given
(bands, radius) configuration, prices each with the same
:class:`~repro.gpu.cost.CostModel`, and sums over the same chunk plan.
``tests/bench/test_model.py`` asserts the projection equals the executed
counters to float precision at small sizes — the projection *is* the
simulator minus the data movement.

CPU projection reuses :func:`repro.core.workload.morphological_workload`
priced by :func:`repro.cpu.spec.cpu_time_model`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.amc_gpu import _batches, _kernels, _vram_chunk_plan
from repro.core.mei import se_offsets
from repro.core.workload import morphological_workload
from repro.cpu.spec import CompilerModel, CpuSpec, cpu_time_model
from repro.gpu.cost import CostModel
from repro.gpu.shader import FragmentShader
from repro.gpu.spec import GpuSpec
from repro.gpu.texture import CHANNELS, TEXEL_BYTES, band_group_count
from repro.spectral.normalize import SpectralEpsilon


@dataclass(frozen=True)
class GpuTimeBreakdown:
    """Projected GPU execution time and its components (seconds)."""

    kernel_s: float
    upload_s: float
    download_s: float
    launches: int
    chunks: int

    @property
    def transfer_s(self) -> float:
        return self.upload_s + self.download_s

    @property
    def total_s(self) -> float:
        return self.kernel_s + self.transfer_s


def launch_catalogue(bands: int, radius: int = 1, *,
                     fuse_groups: int = 6) -> list[tuple[FragmentShader, int]]:
    """(shader, launches-per-chunk) for one chunk of the AMC pipeline.

    Mirrors the launch sequence of
    :func:`repro.core.amc_gpu.gpu_morphological_stage` stage by stage,
    including the band-group fusion batching; any change there must be
    reflected here (the counter-equality test catches divergence).
    """
    groups = band_group_count(bands)
    batches = _batches(groups, fuse_groups)
    widths = tuple(sorted({w for _, w in batches}))
    shaders = _kernels(radius, SpectralEpsilon.get(), widths)
    k_count = len(se_offsets(radius))
    pairs = k_count * (k_count - 1) // 2
    # launches per fusion width across one reduction sweep
    width_counts: dict[int, int] = {}
    for _, w in batches:
        width_counts[w] = width_counts.get(w, 0) + 1

    catalogue: list[tuple[FragmentShader, int]] = []
    for w, n in width_counts.items():
        catalogue.append((shaders[f"bandsum_w{w}"], n))
    catalogue.append((shaders["normalize"], groups))
    catalogue.append((shaders["logstream"], groups))
    for w, n in width_counts.items():
        catalogue.append((shaders[f"entropy_w{w}"], n))
    # Cumulative-distance stage: per pair, one cross launch per batch,
    # one SID-map combine and two accumulations.  All pair shaders share
    # a cost structure, so one representative of each kind is priced.
    for w, n in width_counts.items():
        catalogue.append((shaders[f"cross_0_1_w{w}"], pairs * n))
    catalogue.append((shaders["sid_0_1"], pairs))
    catalogue.append((shaders["accum"], pairs * 2))
    catalogue.append((shaders["mm_init"], 1))
    catalogue.append((shaders["mm_step"], k_count - 1))
    for w, n in width_counts.items():
        catalogue.append((shaders[f"mei_cross_w{w}"], n))
    catalogue.append((shaders["mei_final"], 1))
    return catalogue


def project_gpu_time(spec: GpuSpec, lines: int, samples: int, bands: int,
                     radius: int = 1, *,
                     vram_fraction: float = 0.85,
                     fuse_groups: int = 6) -> GpuTimeBreakdown:
    """Modeled device time for the AMC morphological stage.

    Parameters mirror :func:`gpu_morphological_stage`; the result is what
    the virtual device's counters would report after running the image,
    computed without allocating the image.
    """
    plan = _vram_chunk_plan(lines, samples, bands, radius, spec,
                            vram_fraction=vram_fraction)
    cost_model = CostModel(spec)
    catalogue = launch_catalogue(bands, radius, fuse_groups=fuse_groups)
    groups = band_group_count(bands)

    kernel_s = 0.0
    upload_s = 0.0
    download_s = 0.0
    launches = 0
    # The K x 1 offset LUT is uploaded once per image.
    k_count = len(se_offsets(radius))
    upload_s += cost_model.transfer_time(k_count * TEXEL_BYTES)
    for chunk in plan:
        h, w = chunk.ext_lines, samples
        for shader, count in catalogue:
            _, timing = cost_model.launch_time(shader, w, h)
            kernel_s += count * timing.total_s
            launches += count
        chunk_texels = h * w * TEXEL_BYTES
        upload_s += groups * cost_model.transfer_time(chunk_texels)
        # stage 6: the max/min state (full RGBA) and the scalar MEI.
        download_s += cost_model.transfer_time(chunk_texels)
        download_s += cost_model.transfer_time(chunk_texels // CHANNELS)
    return GpuTimeBreakdown(kernel_s=kernel_s, upload_s=upload_s,
                            download_s=download_s, launches=launches,
                            chunks=len(plan))


def project_cpu_time(spec: CpuSpec, compiler: CompilerModel, lines: int,
                     samples: int, bands: int,
                     radius: int = 1) -> dict[str, float]:
    """Modeled CPU time (seconds) for one platform x build."""
    workload = morphological_workload(lines, samples, bands, radius)
    return cpu_time_model(workload.flops, workload.traffic_bytes,
                          spec, compiler)
