"""The image-size sweep of paper Tables 4-5.

The paper tests the full AVIRIS Indian Pines scene (2166 samples x 614
lines x 216 bands, reported as 547 MB at int16) and five cropped
portions whose reported sizes are the {1/8, 1/4, 3/8, 1/2, 3/4} line
fractions of the full scene: 68, 136, 205, 273 and 410 MB.  This module
reconstructs those geometries, prices all six platforms on each, and
provides the reduced-scale geometry used for *measured* wall-clock runs
on this host.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.bench.model import project_cpu_time, project_gpu_time
from repro.cpu.spec import CompilerModel, PENTIUM4_NORTHWOOD, PRESCOTT_660
from repro.gpu.spec import GEFORCE_7800GTX, GEFORCE_FX5950U

#: The full Indian Pines geometry as the paper states it (§4.2):
#: 2166 samples by 614 lines and 216 spectral bands, int16 storage.
PAPER_FULL_SCENE: tuple[int, int, int] = (614, 2166, 216)  # lines, samples, bands

#: Line fractions whose int16 sizes reproduce the tables' MB column.
PAPER_SIZE_FRACTIONS: tuple[Fraction, ...] = (
    Fraction(1, 8), Fraction(1, 4), Fraction(3, 8),
    Fraction(1, 2), Fraction(3, 4), Fraction(1, 1),
)

#: Bytes per stored value in the paper's size accounting (int16 radiance).
PAPER_BYTES_PER_VALUE: int = 2


@dataclass(frozen=True)
class SizePoint:
    """One row of the scaling tables."""

    fraction: Fraction
    lines: int
    samples: int
    bands: int

    @property
    def size_mb(self) -> float:
        """Scene size in binary MiB at int16 — the tables' 'Size (MB)'
        column.  (The full 614 x 2166 x 216 scene at int16 is 547.9 MiB,
        exactly the paper's "547"; the paper labels mebibytes as MB, as
        2006 papers did.)"""
        return self.lines * self.samples * self.bands \
            * PAPER_BYTES_PER_VALUE / 2 ** 20

    @property
    def pixels(self) -> int:
        return self.lines * self.samples


def paper_size_points(full: tuple[int, int, int] = PAPER_FULL_SCENE,
                      fractions: tuple[Fraction, ...] = PAPER_SIZE_FRACTIONS,
                      ) -> list[SizePoint]:
    """The six rows of Tables 4-5 (or a rescaled variant of them)."""
    lines, samples, bands = full
    points = []
    for frac in fractions:
        cropped = max(int(lines * frac), 1)
        points.append(SizePoint(fraction=frac, lines=cropped,
                                samples=samples, bands=bands))
    return points


def platform_matrix(points: list[SizePoint], *, cpu_build: CompilerModel,
                    radius: int = 1) -> dict[str, list[float]]:
    """Modeled execution time (ms) for every platform at every size.

    Returns a column-label -> list-of-ms mapping matching the paper's
    table layout (rows in ``points`` order).  GPUs are priced by the
    launch-catalogue projection; CPUs by the roofline model with the
    given build.
    """
    columns: dict[str, list[float]] = {}
    for label, device in (("P4 C", PENTIUM4_NORTHWOOD),
                          ("Prescott", PRESCOTT_660)):
        columns[label] = [
            project_cpu_time(device, cpu_build, p.lines, p.samples,
                             p.bands, radius)["total_s"] * 1e3
            for p in points]
    for label, device in (("FX5950 U", GEFORCE_FX5950U),
                          ("7800 GTX", GEFORCE_7800GTX)):
        columns[label] = [
            project_gpu_time(device, p.lines, p.samples, p.bands,
                             radius).total_s * 1e3
            for p in points]
    return columns


def speedup_summary(columns: dict[str, list[float]]) -> dict[str, float]:
    """Headline ratios of a platform matrix (averaged over sizes)."""
    import numpy as np

    p4 = np.asarray(columns["P4 C"])
    prescott = np.asarray(columns["Prescott"])
    fx = np.asarray(columns["FX5950 U"])
    gtx = np.asarray(columns["7800 GTX"])
    return {
        "p4_over_7800": float(np.mean(p4 / gtx)),
        "prescott_over_7800": float(np.mean(prescott / gtx)),
        "p4_over_fx5950": float(np.mean(p4 / fx)),
        "fx5950_over_7800": float(np.mean(fx / gtx)),
        "p4_over_prescott": float(np.mean(p4 / prescott)),
    }
