"""The deterministic fault injector.

A :class:`FaultInjector` holds an ordered list of :class:`FaultSpec`
rules; execution sites (the per-chunk worker functions of
:mod:`repro.parallel`, the per-cube batch worker of
:mod:`repro.pipeline.batch`, and the serving layer's durability
seams — ``"job"`` at each execution attempt, ``"heartbeat_stall"``
just before it, ``"journal_write"`` in the journal's append/spill
paths, ``"cache_disk"`` in the disk cache tier's load/store paths)
call :func:`maybe_inject` at their entry, and any matching spec fires
its fault.  Determinism is structural, not
stateful: a spec matches on the *coordinates* of an execution — site
name, task index, retry attempt, chunk geometry — so the same plan
produces the same faults regardless of worker scheduling, and a fault
keyed to ``attempt=0`` fires exactly once per task even across the
pool/in-process recovery boundary (recovery executions carry higher
attempt numbers; see :mod:`repro.resilience`).

Stochastic campaigns stay reproducible the same way: a spec with
``probability=p`` fires when a seeded hash of the coordinates falls
below ``p`` — no RNG stream whose state could diverge between workers.

Fault kinds
-----------

``"transient"``
    Raises :class:`~repro.errors.TransientFaultError` — the retryable
    failure the bounded-retry machinery recovers.
``"worker_crash"``
    Kills the current process with ``os._exit`` when it is a pool
    worker (daemon process); in a non-worker process it raises
    :class:`~repro.errors.WorkerCrashError` instead so a serial run
    degrades to a retryable error rather than taking the interpreter
    down.
``"timeout"``
    Stalls the execution for ``sleep_s`` seconds, long enough to trip a
    configured per-chunk deadline; the parent recovers the chunk and
    terminates the stalled worker.
``"gpu_oom"``
    Raises :class:`~repro.errors.GpuOutOfMemoryError` with synthetic
    (but populated) byte counts.  Keyed on ``ext_lines_above`` it
    mirrors real memory pressure: the fault clears once the degradation
    planner has re-chunked below the threshold.

Installation
------------

:func:`install` sets the process-wide injector (inherited by forked
pool workers); the ``REPRO_FAULTS`` environment variable carries the
same configuration as JSON for spawn-based pools and end-to-end chaos
runs::

    REPRO_FAULTS='{"seed": 7, "specs": [{"kind": "transient",
                   "site": "chunk", "index": 0, "attempt": 0}]}'
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import time
from dataclasses import asdict, dataclass

from repro.errors import (
    GpuOutOfMemoryError,
    StreamError,
    TransientFaultError,
    WorkerCrashError,
)

#: Environment variable holding a JSON injector configuration.
ENV_VAR = "REPRO_FAULTS"

#: The recognized fault kinds.
KINDS = ("transient", "worker_crash", "timeout", "gpu_oom")

#: Exit status an injected worker crash dies with (recognizable in
#: post-mortems, never conflated with a Python traceback exit).
CRASH_EXIT_CODE = 13

#: Registry of every :func:`maybe_inject` call site in the library,
#: mapping site name to where (and at what granularity) the fault
#: fires.  This is the single source of truth the ``fault-site-registry``
#: lint checks the code and ``docs/robustness.md`` against: adding a
#: ``maybe_inject("new_site")`` call without registering and
#: documenting the site — or letting a registered site go dead — fails
#: ``python -m tools.reprolint``.
FAULT_SITES = {
    "chunk": "per-chunk worker entry (repro.parallel pool/amc/map)",
    "cube": "per-cube batch worker entry (repro.pipeline.batch)",
    "job": "serving executor, once per job execution attempt",
    "heartbeat_stall": "serving executor, just before the attempt's "
                       "first heartbeat",
    "journal_write": "job-journal append/spill paths",
    "cache_disk": "disk result-cache load/store paths",
}


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule: *what* to inject and *where* it matches.

    Attributes
    ----------
    kind:
        One of :data:`KINDS`.
    site:
        Execution site name — ``"chunk"`` (the per-chunk workers),
        ``"cube"`` (the per-cube batch worker), or one of the serving
        seams (``"job"``, ``"heartbeat_stall"``, ``"journal_write"``,
        ``"cache_disk"``); custom sites may call :func:`maybe_inject`
        with their own names.
    index:
        Task index the fault is pinned to (``None`` matches any).
    attempt:
        Retry attempt the fault fires on (``None`` matches every
        attempt).  The default 0 fires on the first execution only, so
        retry and recovery paths see the task succeed.
    probability:
        When set, the spec additionally fires only if the seeded
        coordinate hash falls below this value — deterministic
        pseudo-random campaigns.
    sleep_s:
        Stall duration for ``kind="timeout"``.
    ext_lines_above:
        For ``kind="gpu_oom"``: fire only while the executing chunk's
        extended height exceeds this — the knob that lets OOM clear
        after degradation re-chunking.
    """

    kind: str
    site: str = "chunk"
    index: int | None = None
    attempt: int | None = 0
    probability: float | None = None
    sleep_s: float = 30.0
    ext_lines_above: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise StreamError(
                f"unknown fault kind {self.kind!r}; pick from {KINDS}")
        if self.probability is not None and not (
                0.0 <= self.probability <= 1.0):
            raise StreamError(
                f"probability must be in [0, 1], got {self.probability}")
        if self.sleep_s < 0:
            raise StreamError(f"sleep_s must be >= 0, got {self.sleep_s}")

    def matches(self, site: str, index: int | None, attempt: int,
                ext_lines: int | None, seed: int) -> bool:
        """Whether this spec fires at the given execution coordinates."""
        if self.site != site:
            return False
        if self.index is not None and self.index != index:
            return False
        if self.attempt is not None and self.attempt != attempt:
            return False
        if self.ext_lines_above is not None and (
                ext_lines is None or ext_lines <= self.ext_lines_above):
            return False
        if self.probability is not None and (
                _coordinate_fraction(seed, site, index, attempt)
                >= self.probability):
            return False
        return True


def _coordinate_fraction(seed: int, site: str, index: int | None,
                         attempt: int) -> float:
    """A deterministic value in [0, 1) hashed from execution coordinates.

    Scheduling-independent by construction (no RNG stream state), so a
    probabilistic campaign reproduces exactly across worker counts.
    """
    key = f"{seed}:{site}:{index}:{attempt}".encode()
    digest = hashlib.blake2b(key, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0 ** 64


class FaultInjector:
    """An ordered set of fault specs plus the campaign seed."""

    def __init__(self, specs, seed: int = 0) -> None:
        self.specs = tuple(specs)
        self.seed = int(seed)

    def check(self, site: str, *, index: int | None = None,
              attempt: int = 0, ext_lines: int | None = None) -> None:
        """Fire the first matching spec's fault (if any).

        ``"timeout"`` faults stall and then *continue* matching, so a
        campaign can stack a stall with a later failure.
        """
        for spec in self.specs:
            if not spec.matches(site, index, attempt, ext_lines, self.seed):
                continue
            self._fire(spec, site, index, attempt, ext_lines)

    def _fire(self, spec: FaultSpec, site: str, index: int | None,
              attempt: int, ext_lines: int | None) -> None:
        where = f"{site}[{index}] attempt {attempt}"
        if spec.kind == "transient":
            raise TransientFaultError(f"injected transient fault at {where}")
        if spec.kind == "worker_crash":
            if multiprocessing.current_process().daemon:
                os._exit(CRASH_EXIT_CODE)
            raise WorkerCrashError(
                f"injected worker crash at {where} (non-worker process: "
                f"raised instead of exiting)")
        if spec.kind == "timeout":
            time.sleep(spec.sleep_s)
            return
        # gpu_oom — synthetic but structured byte counts: "free" is what
        # the threshold geometry would occupy, "requested" the current
        # chunk's, so requested > free exactly while the fault matches.
        line_bytes = 1 << 20
        requested = (ext_lines or 1) * line_bytes
        free = (spec.ext_lines_above or 0) * line_bytes
        raise GpuOutOfMemoryError(
            f"injected GPU OOM at {where} "
            f"(ext_lines={ext_lines}, threshold={spec.ext_lines_above})",
            requested=requested, free=free, capacity=free)

    # -- serialization (the env-var transport) ---------------------------

    def to_json(self) -> str:
        """The injector as a JSON document (the ``REPRO_FAULTS`` form)."""
        return json.dumps({"seed": self.seed,
                           "specs": [asdict(s) for s in self.specs]})

    @classmethod
    def from_json(cls, text: str) -> "FaultInjector":
        """Parse the :meth:`to_json` / ``REPRO_FAULTS`` form."""
        data = json.loads(text)
        specs = [FaultSpec(**spec) for spec in data.get("specs", ())]
        return cls(specs, seed=data.get("seed", 0))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"FaultInjector(seed={self.seed}, "
                f"specs={[s.kind for s in self.specs]})")


# -- process-wide installation ------------------------------------------

_INSTALLED: FaultInjector | None = None
#: (env text, parsed injector) cache so per-chunk checks do not re-parse.
_ENV_CACHE: tuple[str, FaultInjector] | None = None
#: Current retry attempt, set by the resilience retry loop around every
#: task execution so specs can key on it.
_ATTEMPT: int = 0


def install(injector: FaultInjector) -> None:
    """Install a process-wide injector (inherited by forked workers)."""
    global _INSTALLED
    _INSTALLED = injector


def uninstall() -> None:
    """Remove the installed injector (environment faults still apply)."""
    global _INSTALLED
    _INSTALLED = None


def current_injector() -> FaultInjector | None:
    """The installed injector, else the ``REPRO_FAULTS`` one, else None."""
    global _ENV_CACHE
    if _INSTALLED is not None:
        return _INSTALLED
    text = os.environ.get(ENV_VAR)
    if not text:
        return None
    if _ENV_CACHE is None or _ENV_CACHE[0] != text:
        _ENV_CACHE = (text, FaultInjector.from_json(text))
    return _ENV_CACHE[1]


def set_attempt(attempt: int) -> None:
    """Record the retry attempt the current task execution is on."""
    global _ATTEMPT
    _ATTEMPT = attempt


def current_attempt() -> int:
    """The retry attempt recorded by :func:`set_attempt` (0 outside
    retry loops)."""
    return _ATTEMPT


def maybe_inject(site: str, *, index: int | None = None,
                 ext_lines: int | None = None) -> None:
    """Fault hook for execution sites: fire any configured fault.

    A no-op unless an injector is installed (or configured through the
    environment) — the zero-fault cost is one global read.
    """
    injector = current_injector()
    if injector is not None:
        injector.check(site, index=index, attempt=current_attempt(),
                       ext_lines=ext_lines)
