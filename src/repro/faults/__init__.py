"""Deterministic, seedable fault injection for chaos testing.

The injector lets tests (and operators) plant worker crashes, chunk
timeouts, transient kernel failures, and forced GPU OOM at exact
execution coordinates — reproducibly, independent of worker scheduling.
See :mod:`repro.faults.injector` for the matching and installation
model, and ``docs/robustness.md`` for the cookbook.
"""

from repro.faults.injector import (
    CRASH_EXIT_CODE,
    ENV_VAR,
    FAULT_SITES,
    KINDS,
    FaultInjector,
    FaultSpec,
    current_attempt,
    current_injector,
    install,
    maybe_inject,
    set_attempt,
    uninstall,
)

__all__ = [
    "CRASH_EXIT_CODE",
    "ENV_VAR",
    "FAULT_SITES",
    "FaultInjector",
    "FaultSpec",
    "KINDS",
    "current_attempt",
    "current_injector",
    "install",
    "maybe_inject",
    "set_attempt",
    "uninstall",
]
