"""Multi-core execution of chunked pipelines (chunk = unit of work).

The chunk plans of :mod:`repro.hsi.chunking` decompose an image into
independent halo-carrying pieces — the paper's streaming decomposition.
This package dispatches those pieces across a :mod:`multiprocessing`
worker pool, producing results bit-identical to serial execution:

* :func:`run_chunked_parallel` — the parallel counterpart of
  :func:`repro.stream.chunked.run_chunked` for any
  :class:`~repro.stream.graph.StageGraph`;
* :func:`parallel_morphological_stage` — chunk-parallel AMC
  morphological stage over any of the three backends (one virtual GPU
  per worker for ``backend="gpu"``), wired into
  :func:`repro.core.amc.run_amc` via ``AMCConfig(n_workers=...)`` and
  the CLI via ``repro classify --workers N``;
* :func:`parallel_pixel_map` — the generic chunk-parallel per-pixel
  map every non-morphological workload stage (SAM / CEM / RX scoring,
  PCA projection — see :mod:`repro.workloads`) runs through;
* :func:`resolve_workers` / :func:`run_tasks` — the shared pool
  machinery (0 = all cores; serial in-process fallback when the pool is
  unavailable or pointless).

See ``docs/parallel.md`` for the architecture and the correctness
argument.
"""

from repro.parallel.amc import (
    combine_gpu_accounting,
    parallel_morphological_stage,
)
from repro.parallel.map import parallel_pixel_map
from repro.parallel.pool import (
    resolve_workers,
    run_chunked_parallel,
    run_tasks,
)

__all__ = [
    "combine_gpu_accounting",
    "parallel_morphological_stage",
    "parallel_pixel_map",
    "resolve_workers",
    "run_chunked_parallel",
    "run_tasks",
]
