"""Chunk-parallel execution of per-pixel kernels (any workload's map
stage).

The morphological stage got its own parallel driver
(:func:`~repro.parallel.amc.parallel_morphological_stage`) because it
stitches three maps and sums device accounting.  Every *other* workload
stage this repo runs — SAM / CEM / RX scoring, PCA projection — is a
plain per-pixel map: one kernel, fixed global payload (a target
spectrum, an inverse covariance, fitted components), one output plane
(or a (H, W, K) stack).  :func:`parallel_pixel_map` is the shared
driver for that shape, built on the same machinery and with the same
guarantees:

* the line-wise chunk plan of :mod:`repro.hsi.chunking` (halo 0 for
  point kernels; a stencil kernel declares its halo);
* the worker pool of :mod:`repro.parallel.pool` with its bounded
  retries, per-chunk deadlines and in-process recovery — including the
  ``"chunk"`` fault-injection site, so the chaos tests exercise these
  stages exactly like the morphological one;
* per-chunk :class:`~repro.profiling.profiler.ChunkRecord` and retry
  events on the caller's profiler;
* bit-identical stitching: the serial path (``n_workers <= 1``) runs
  the *same* kernel over the whole image, and the kernels this repo
  registers are per-pixel independent (non-optimized einsum, fixed
  reduction order), so chunk geometry cannot change a single bit.
"""

from __future__ import annotations

import os
import time
from dataclasses import replace

import numpy as np

from repro.errors import ShapeError
from repro.faults import maybe_inject
from repro.hsi.chunking import plan_chunks_by_lines
from repro.parallel.pool import resolve_workers, run_tasks
from repro.profiling.profiler import ChunkRecord, Profiler
from repro.resilience import RetryPolicy

# Worker-side state (see repro.parallel.pool for the pattern).
_STATE: dict = {}


def _init_map_worker(bip: np.ndarray, kernel, payload: tuple,
                     halo: int) -> None:
    _STATE["bip"] = bip
    _STATE["kernel"] = kernel
    _STATE["payload"] = payload
    _STATE["halo"] = halo


def _map_chunk(chunk):
    """Run the kernel on one chunk's extended region; return its core."""
    maybe_inject("chunk", index=chunk.index, ext_lines=chunk.ext_lines)
    bip, kernel = _STATE["bip"], _STATE["kernel"]
    payload, halo = _STATE["payload"], _STATE["halo"]
    sub = bip[chunk.ext_start:chunk.ext_stop]
    start = time.perf_counter()
    out = kernel(sub, *payload)
    wall = time.perf_counter() - start
    record = ChunkRecord(index=chunk.index, core_lines=chunk.core_lines,
                         ext_lines=chunk.ext_lines, halo=halo,
                         wall_s=wall, upload_s=0.0, compute_s=wall,
                         download_s=0.0, worker=os.getpid())
    return chunk.index, np.ascontiguousarray(chunk.core_of(out)), record


def parallel_pixel_map(bip: np.ndarray, kernel, payload: tuple = (), *,
                       halo: int = 0, n_workers: int = 0,
                       n_chunks: int | None = None,
                       profiler: Profiler | None = None,
                       policy: RetryPolicy | None = None) -> np.ndarray:
    """Map a per-pixel kernel over an image, chunk-parallel.

    Parameters
    ----------
    bip:
        (H, W, N) radiance cube, band-interleaved-by-pixel.
    kernel:
        A picklable callable ``kernel(sub_bip, *payload)`` returning an
        array whose first axis is the sub-image's line axis — an
        (h, W) score plane or an (h, W, K) stack.  Must be per-pixel
        independent within its declared ``halo`` for the chunked result
        to equal the whole-image call (every kernel this repo registers
        is; a property test pins it).
    payload:
        Global, read-only kernel arguments (precomputed statistics),
        shipped to each worker once through the pool initializer.
    halo:
        Lines of context each chunk carries per interior edge (0 for
        point kernels).
    n_workers:
        Pool size (0 = all cores, 1 = serial in-process: the same
        kernel runs once over the whole image).
    n_chunks:
        Chunk count (default: one per worker).
    profiler:
        Optional profiler; receives one chunk record per chunk plus
        resilience events.
    policy:
        Optional :class:`~repro.resilience.RetryPolicy` — per-chunk
        retry budget and deadline.

    Returns
    -------
    numpy.ndarray
        The stitched (H, W[, K]) result, bit-identical to
        ``kernel(bip, *payload)``.
    """
    bip = np.asarray(bip)
    if bip.ndim != 3:
        raise ShapeError(f"expected (H, W, N), got ndim={bip.ndim}")
    lines, samples, bands = bip.shape
    workers = resolve_workers(n_workers)
    if n_workers == 1:
        return np.asarray(kernel(bip, *payload))
    pieces = workers if n_chunks is None else int(n_chunks)
    pieces = max(1, min(pieces, lines))
    core_lines = -(-lines // pieces)               # ceil division
    plan = plan_chunks_by_lines(lines, samples, bands,
                                max_ext_lines=core_lines + 2 * halo,
                                halo=halo)
    results = run_tasks(plan, _map_chunk, _init_map_worker,
                        (bip, kernel, tuple(payload), halo), workers,
                        state=_STATE, policy=policy, profiler=profiler)

    out: np.ndarray | None = None
    for outcome in results:
        index, core, record = outcome.value
        chunk = plan.chunks[index]
        if out is None:
            out = np.empty((lines, *core.shape[1:]), dtype=core.dtype)
        out[chunk.core_start:chunk.core_stop] = core
        if profiler is not None:
            if outcome.retries:
                record = replace(record, retries=outcome.retries)
                profiler.record_event(
                    "retry", f"chunk took {outcome.retries} extra "
                    f"attempt(s)"
                    + (" (recovered in-process)" if outcome.recovered
                       else ""),
                    chunk_index=index)
            profiler.record_chunk(record)
    return out
