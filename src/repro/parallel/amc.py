"""Chunk-parallel execution of the AMC morphological stage.

The morphological stage dominates AMC's runtime (paper Table 4/5: it is
*the* stage worth porting to the GPU), and it is local: every output
pixel depends only on its SE neighbourhood, so the line-wise chunk plan
of :mod:`repro.hsi.chunking` with ``halo = se_radius`` splits the image
into fully independent pieces.  This module fans those pieces out over
the worker pool machinery of :mod:`repro.parallel.pool` and stitches
MEI / erosion / dilation maps bit-identically to whole-image execution:

* normalization is per-pixel (each pixel vector sums to 1), so it
  commutes with chunking;
* every core pixel's SE window lies inside its chunk's extended region,
  so clamp-to-edge addressing only ever fires at true image borders —
  which coincide with extended-region borders on the first/last chunk;
* erosion/dilation indices are *SE-neighbour* indices (row-major into
  :func:`repro.core.mei.se_offsets`), positions relative to each pixel,
  so they stitch without translation.

Backends are resolved through :mod:`repro.backends`: each worker calls
:meth:`~repro.backends.MorphologicalBackend.run_chunk` on its chunk's
extended region — any registered backend (including custom ones) is
chunk-parallel for free.  With the built-in ``"gpu"`` backend each
chunk runs the full stream pipeline on its own
:class:`~repro.gpu.device.VirtualGPU` — the multi-board reading of the
paper's decomposition — and the per-board accounting is summed into one
:class:`~repro.core.amc_gpu.GpuAmcOutput` (``modeled_time_s`` is total
device work, not the parallel makespan).
"""

from __future__ import annotations

import os
import time
from dataclasses import replace

import numpy as np

from repro.backends import MorphologicalBackend, get_backend
from repro.core.amc_gpu import GpuAmcOutput
from repro.core.pairreuse import sum_reuse_counters
from repro.errors import GpuOutOfMemoryError, ShapeError
from repro.faults import maybe_inject
from repro.gpu.counters import GpuCounters
from repro.gpu.spec import GEFORCE_7800GTX, GpuSpec
from repro.hsi.chunking import plan_chunks_by_lines
from repro.parallel.pool import resolve_workers, run_tasks
from repro.profiling.profiler import ChunkRecord, Profiler
from repro.resilience import RetryPolicy

# Worker-side state (see repro.parallel.pool for the pattern).
_STATE: dict = {}


def _init_worker(bip: np.ndarray, radius: int,
                 backend: MorphologicalBackend, spec: GpuSpec) -> None:
    _STATE["bip"] = bip
    _STATE["radius"] = radius
    _STATE["backend"] = backend
    _STATE["spec"] = spec


def _morph_chunk(chunk):
    """Run the morphological stage on one chunk's extended region."""
    maybe_inject("chunk", index=chunk.index, ext_lines=chunk.ext_lines)
    bip, radius = _STATE["bip"], _STATE["radius"]
    backend, spec = _STATE["backend"], _STATE["spec"]
    sub = bip[chunk.ext_start:chunk.ext_stop]
    start = time.perf_counter()
    if backend.accepts_halo_margins:
        # Tell the backend which rows are discarded halo so the fused
        # engine can skip border corrections the neighbouring chunk
        # already computes in its core (cross-chunk shift-reuse).
        piece = backend.run_chunk(sub, radius, spec=spec,
                                  halo_margins=chunk.halo_margins)
    else:
        piece = backend.run_chunk(sub, radius, spec=spec)
    wall = time.perf_counter() - start
    if piece.split is None:
        upload, compute, download = 0.0, wall, 0.0
    else:
        upload, compute, download = piece.split
    record = ChunkRecord(index=chunk.index, core_lines=chunk.core_lines,
                         ext_lines=chunk.ext_lines, halo=radius,
                         wall_s=wall, upload_s=upload, compute_s=compute,
                         download_s=download, worker=os.getpid())
    cores = tuple(np.ascontiguousarray(chunk.core_of(a))
                  for a in (piece.mei, piece.erosion_index,
                            piece.dilation_index))
    return chunk.index, cores, record, piece.accounting, piece.stats


def combine_gpu_accounting(morph: GpuAmcOutput,
                           extra: GpuCounters) -> GpuAmcOutput:
    """Fold further device activity into a morphological-stage output.

    Used when the tail stages (GPU unmixing) ran on a *different*
    device than the — possibly many, parallel — morphological boards:
    returns a new :class:`GpuAmcOutput` whose accounting covers both.
    Thin wrapper over
    :meth:`~repro.core.amc_gpu.GpuAmcOutput.with_accounting`.
    """
    return morph.with_accounting(extra, add=True)


def parallel_morphological_stage(bip: np.ndarray, radius: int = 1, *,
                                 backend="reference",
                                 n_workers: int = 0,
                                 n_chunks: int | None = None,
                                 gpu_spec: GpuSpec = GEFORCE_7800GTX,
                                 profiler: Profiler | None = None,
                                 policy: RetryPolicy | None = None):
    """Run the morphological stage chunk-parallel across processes.

    Parameters
    ----------
    bip:
        (H, W, N) radiance cube, band-interleaved-by-pixel.
    radius:
        SE radius; doubles as the chunk halo.
    backend:
        A registered backend name (built-in: "reference" | "naive" |
        "gpu") or a :class:`~repro.backends.MorphologicalBackend`
        instance — which morphological implementation each worker runs.
    n_workers:
        Pool size (0 = all cores, 1 = serial in-process).
    n_chunks:
        How many chunks to split into (default: one per worker).  More
        chunks than workers improves load balance at the price of more
        redundant halo lines.
    gpu_spec:
        Board each worker simulates for ``backend="gpu"``.
    profiler:
        Optional profiler; receives one chunk record per chunk, plus
        resilience events (retries, recoveries, degradations).
    policy:
        Optional :class:`~repro.resilience.RetryPolicy` — per-chunk
        retry budget and deadline (see
        :func:`~repro.parallel.pool.run_tasks`).

    A :class:`~repro.errors.GpuOutOfMemoryError` from any chunk (a
    simulated board too small for its extended region) triggers
    graceful degradation: the image is re-planned with halved per-chunk
    core lines — down to single-line chunks — and retried.  Chunk
    geometry never changes the stitched values, so degraded runs stay
    bit-identical.

    Returns
    -------
    (mei, erosion_index, dilation_index, gpu_output)
        Stitched full-image maps, bit-identical to the serial
        implementations; ``gpu_output`` is the summed
        :class:`GpuAmcOutput` for device backends, else ``None``.
    """
    bip = np.asarray(bip)
    if bip.ndim != 3:
        raise ShapeError(f"expected (H, W, N), got ndim={bip.ndim}")
    backend = get_backend(backend)
    lines, samples, bands = bip.shape
    workers = resolve_workers(n_workers)
    pieces = workers if n_chunks is None else int(n_chunks)
    pieces = max(1, min(pieces, lines))
    core_lines = -(-lines // pieces)               # ceil division
    while True:
        plan = plan_chunks_by_lines(lines, samples, bands,
                                    max_ext_lines=core_lines + 2 * radius,
                                    halo=radius)
        try:
            results = run_tasks(plan, _morph_chunk, _init_worker,
                                (bip, radius, backend, gpu_spec), workers,
                                state=_STATE, policy=policy,
                                profiler=profiler)
            break
        except GpuOutOfMemoryError as exc:
            if core_lines <= 1:
                raise
            smaller = max(1, core_lines // 2)
            if profiler is not None:
                detail = f"core lines per chunk {core_lines} -> {smaller}"
                if exc.requested is not None:
                    detail += (f" (requested={exc.requested}, "
                               f"free={exc.free})")
                profiler.record_event("oom_degrade", detail)
            core_lines = smaller

    mei = np.empty((lines, samples), dtype=backend.mei_dtype)
    erosion = np.empty((lines, samples), dtype=np.int64)
    dilation = np.empty((lines, samples), dtype=np.int64)
    accountings = []
    stats_dicts = []
    for outcome in results:
        index, cores, record, accounting, stats = outcome.value
        chunk = plan.chunks[index]
        core = slice(chunk.core_start, chunk.core_stop)
        mei[core], erosion[core], dilation[core] = cores
        if profiler is not None:
            if outcome.retries:
                record = replace(record, retries=outcome.retries)
                profiler.record_event(
                    "retry", f"chunk took {outcome.retries} extra "
                    f"attempt(s)"
                    + (" (recovered in-process)" if outcome.recovered
                       else ""),
                    chunk_index=index)
            profiler.record_chunk(record)
        if accounting is not None:
            accountings.append(accounting)
        if stats is not None:
            stats_dicts.append(stats)

    if profiler is not None and stats_dicts:
        # Sum the per-chunk shift-reuse counters into the morphology
        # stage record (the ratio is recomputed from the summed totals).
        profiler.record_stage_counters("morphology",
                                       sum_reuse_counters(stats_dicts))
    gpu_output = backend.stitched_accounting(mei, erosion, dilation,
                                             radius, accountings)
    return mei, erosion, dilation, gpu_output
