"""Multi-core chunked execution of stage graphs.

The chunk plan of :mod:`repro.stream.chunked` already decomposes a
pipeline into *independent* units of work: every chunk carries the halo
its stencils need, so no chunk reads another chunk's results.  That
independence is exactly what the related streaming literature exploits
("the streaming decomposition makes the workload embarrassingly
parallel"), and this module cashes it in on the host: chunks are
dispatched across a :mod:`multiprocessing` worker pool and the cores
stitched back in plan order, producing results **identical** to serial
execution — same chunk geometry, same per-chunk arithmetic, only the
schedule differs.

Design notes
------------

* Workers receive the graph, the full input streams and the executor
  once (pool initializer), then one :class:`~repro.hsi.chunking.Chunk`
  per task — the cheap message is the chunk geometry, not the data.
  On fork-capable platforms even the one-time state rides the fork.
* Each worker builds its chunk view, runs the executor, and sends back
  only the *core* rows plus a
  :class:`~repro.profiling.profiler.ChunkRecord` (wall time; on GPU
  executors also the modeled upload/compute/download split read off the
  worker-local device counters).
* ``n_workers <= 1``, a single-chunk plan, or an unavailable pool all
  take the same in-process code path — the fallback is the *identical*
  per-chunk function, so correctness never depends on the pool.
* Dependent-fetch graphs are rejected up front by
  :func:`~repro.stream.chunked.graph_halo`, before any process is
  spawned — the same constraint that forced the paper's MEI stage to
  keep its whole chunk resident.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import numpy as np

from repro.errors import StreamError
from repro.hsi.chunking import Chunk
from repro.profiling.profiler import ChunkRecord, Profiler
from repro.stream.chunked import plan_stream_chunks
from repro.stream.graph import StageGraph
from repro.stream.stream import Stream


def resolve_workers(n_workers: int) -> int:
    """Normalize a worker-count request: 0 means "all cores".

    Negative counts are rejected; anything else is returned clamped to
    at least 1 (``os.cpu_count()`` can return ``None`` on exotic
    platforms — that also resolves to 1).
    """
    if n_workers < 0:
        raise StreamError(f"n_workers must be >= 0, got {n_workers}")
    if n_workers == 0:
        return max(1, os.cpu_count() or 1)
    return n_workers


# Worker-side state, installed once per pool process by _init_worker.
# Plain module global: multiprocessing initializers cannot return state.
_STATE: dict = {}


def _init_worker(graph: StageGraph, inputs: dict[str, Stream],
                 executor, halo: int) -> None:
    _STATE["graph"] = graph
    _STATE["inputs"] = inputs
    _STATE["executor"] = executor
    _STATE["halo"] = halo


def _counters_of(executor):
    device = getattr(executor, "device", None)
    return None if device is None else device.counters


def _run_chunk(chunk: Chunk):
    """Execute one chunk; returns (index, core arrays, profile record)."""
    graph, inputs = _STATE["graph"], _STATE["inputs"]
    executor, halo = _STATE["executor"], _STATE["halo"]
    counters = _counters_of(executor)
    base = (0.0, 0.0, 0.0) if counters is None else (
        counters.upload_time_s, counters.kernel_time_s,
        counters.download_time_s)
    start = time.perf_counter()
    chunk_inputs = {
        name: Stream(name, stream.data[chunk.ext_start:chunk.ext_stop])
        for name, stream in inputs.items()}
    result = executor.run(graph, chunk_inputs)
    cores = {name: np.ascontiguousarray(chunk.core_of(stream.data))
             for name, stream in result.items()}
    wall = time.perf_counter() - start
    if counters is None:
        upload, compute, download = 0.0, wall, 0.0
    else:
        upload = counters.upload_time_s - base[0]
        compute = counters.kernel_time_s - base[1]
        download = counters.download_time_s - base[2]
    record = ChunkRecord(index=chunk.index, core_lines=chunk.core_lines,
                         ext_lines=chunk.ext_lines, halo=halo,
                         wall_s=wall, upload_s=upload, compute_s=compute,
                         download_s=download, worker=os.getpid())
    return chunk.index, cores, record


def _make_pool(ctx, processes: int, initializer, initargs):
    """Pool construction, separated so tests can force the fallback."""
    return ctx.Pool(processes=processes, initializer=initializer,
                    initargs=initargs)


def run_tasks(tasks, func, initializer, initargs, n_workers: int,
              state: dict | None = None) -> list:
    """Map ``func`` over ``tasks``, through a process pool when possible.

    The shared dispatch engine of this package: ``initializer(*initargs)``
    installs worker-side state (once per pool process), then ``func`` runs
    per task.  With ``n_workers <= 1``, a single task, or a host where
    pools cannot be created (``OSError``), the *same* initializer+func
    pair runs in-process — the fallback path is byte-for-byte the same
    computation.  ``state`` names the module-global dict the initializer
    fills so the in-process path can clear it afterwards.
    """
    tasks = list(tasks)
    if n_workers > 1 and len(tasks) > 1:
        method = ("fork" if "fork" in multiprocessing.get_all_start_methods()
                  else None)
        ctx = multiprocessing.get_context(method)
        try:
            pool = _make_pool(ctx, min(n_workers, len(tasks)),
                              initializer, initargs)
        except OSError:
            pool = None                      # no pool on this host: serial
        if pool is not None:
            with pool:
                return pool.map(func, tasks, chunksize=1)
    initializer(*initargs)
    try:
        return [func(task) for task in tasks]
    finally:
        if state is not None:
            state.clear()


def run_chunked_parallel(graph: StageGraph, inputs: dict[str, Stream],
                         executor, *, max_ext_lines: int,
                         halo: int | None = None, n_workers: int = 0,
                         profiler: Profiler | None = None
                         ) -> dict[str, Stream]:
    """Run a stage graph chunk by chunk across a process pool.

    The parallel counterpart of
    :func:`repro.stream.chunked.run_chunked` — same parameters, same
    chunk plan, bit-identical outputs; chunks merely execute
    concurrently.

    Parameters
    ----------
    graph, inputs, executor, max_ext_lines, halo:
        As in :func:`~repro.stream.chunked.run_chunked`.  The executor
        must be picklable (both :class:`~repro.stream.executor.CpuExecutor`
        and :class:`~repro.stream.executor.GpuExecutor` are); each worker
        process operates on its own copy, so a GPU executor's device
        counters accumulate per worker — the per-chunk
        upload/compute/download split still reaches the caller through
        the profiler records.
    n_workers:
        Pool size; 0 means one worker per CPU core, 1 forces the serial
        in-process path.
    profiler:
        Optional :class:`~repro.profiling.profiler.Profiler`; receives
        one :class:`~repro.profiling.profiler.ChunkRecord` per chunk.

    Returns
    -------
    dict of stitched output streams, identical to serial execution.
    """
    workers = resolve_workers(n_workers)
    plan = plan_stream_chunks(graph, inputs, max_ext_lines=max_ext_lines,
                              halo=halo)
    lines, samples = plan.lines, plan.samples
    results = run_tasks(plan, _run_chunk, _init_worker,
                        (graph, inputs, executor, plan.halo), workers,
                        state=_STATE)

    outputs: dict[str, np.ndarray] = {}
    for index, cores, record in results:
        chunk = plan.chunks[index]
        for name, core in cores.items():
            if name not in outputs:
                outputs[name] = np.empty((lines, samples, 4),
                                         dtype=np.float32)
            outputs[name][chunk.core_start:chunk.core_stop] = core
        if profiler is not None:
            profiler.record_chunk(record)
    return {name: Stream(name, data) for name, data in outputs.items()}
