"""Multi-core chunked execution of stage graphs.

The chunk plan of :mod:`repro.stream.chunked` already decomposes a
pipeline into *independent* units of work: every chunk carries the halo
its stencils need, so no chunk reads another chunk's results.  That
independence is exactly what the related streaming literature exploits
("the streaming decomposition makes the workload embarrassingly
parallel"), and this module cashes it in on the host: chunks are
dispatched across a :mod:`multiprocessing` worker pool and the cores
stitched back in plan order, producing results **identical** to serial
execution — same chunk geometry, same per-chunk arithmetic, only the
schedule differs.

Design notes
------------

* Workers receive the graph, the full input streams and the executor
  once (pool initializer), then one :class:`~repro.hsi.chunking.Chunk`
  per task — the cheap message is the chunk geometry, not the data.
  On fork-capable platforms even the one-time state rides the fork.
* Each worker builds its chunk view, runs the executor, and sends back
  only the *core* rows plus a
  :class:`~repro.profiling.profiler.ChunkRecord` (wall time; on GPU
  executors also the modeled upload/compute/download split read off the
  worker-local device counters).
* ``n_workers <= 1``, a single-chunk plan, or an unavailable pool all
  take the same in-process code path — the fallback is the *identical*
  per-chunk function, so correctness never depends on the pool.
* Dependent-fetch graphs are rejected up front by
  :func:`~repro.stream.chunked.graph_halo`, before any process is
  spawned — the same constraint that forced the paper's MEI stage to
  keep its whole chunk resident.

Fault tolerance (:mod:`repro.resilience`) rides the same independence:
tasks are retried per the caller's :class:`~repro.resilience.RetryPolicy`
(worker-side), collected with a per-task deadline, and any task the
pool loses — worker crash, stalled chunk, broken pool, ``OSError`` at
pool creation — is recomputed *in-process* with the identical per-chunk
function, so a dying pool degrades the schedule, never the results.
A :class:`~repro.errors.GpuOutOfMemoryError` during chunked execution
triggers graceful degradation instead of failure: the plan is rebuilt
with halved ``max_ext_lines`` (down to the halo-imposed minimum) and
retried — the paper's motivation for chunking, applied dynamically.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import replace

import numpy as np

from repro.errors import GpuOutOfMemoryError, StreamError
from repro.faults import maybe_inject
from repro.hsi.chunking import Chunk
from repro.profiling.profiler import ChunkRecord, Profiler
from repro.resilience import RetryPolicy, TaskOutcome, collect_async, \
    run_with_retry
from repro.stream.chunked import plan_stream_chunks
from repro.stream.graph import StageGraph
from repro.stream.stream import Stream


def resolve_workers(n_workers: int) -> int:
    """Normalize a worker-count request: 0 means "all cores".

    Negative counts are rejected; anything else is returned clamped to
    at least 1 (``os.cpu_count()`` can return ``None`` on exotic
    platforms — that also resolves to 1).
    """
    if n_workers < 0:
        raise StreamError(f"n_workers must be >= 0, got {n_workers}")
    if n_workers == 0:
        return max(1, os.cpu_count() or 1)
    return n_workers


# Worker-side state, installed once per pool process by _init_worker.
# Plain module global: multiprocessing initializers cannot return state.
_STATE: dict = {}


def _init_worker(graph: StageGraph, inputs: dict[str, Stream],
                 executor, halo: int) -> None:
    _STATE["graph"] = graph
    _STATE["inputs"] = inputs
    _STATE["executor"] = executor
    _STATE["halo"] = halo


def _counters_of(executor):
    device = getattr(executor, "device", None)
    return None if device is None else device.counters


def _run_chunk(chunk: Chunk):
    """Execute one chunk; returns (index, core arrays, profile record)."""
    maybe_inject("chunk", index=chunk.index, ext_lines=chunk.ext_lines)
    graph, inputs = _STATE["graph"], _STATE["inputs"]
    executor, halo = _STATE["executor"], _STATE["halo"]
    counters = _counters_of(executor)
    base = (0.0, 0.0, 0.0) if counters is None else (
        counters.upload_time_s, counters.kernel_time_s,
        counters.download_time_s)
    start = time.perf_counter()
    chunk_inputs = {
        name: Stream(name, stream.data[chunk.ext_start:chunk.ext_stop])
        for name, stream in inputs.items()}
    result = executor.run(graph, chunk_inputs)
    cores = {name: np.ascontiguousarray(chunk.core_of(stream.data))
             for name, stream in result.items()}
    wall = time.perf_counter() - start
    if counters is None:
        upload, compute, download = 0.0, wall, 0.0
    else:
        upload = counters.upload_time_s - base[0]
        compute = counters.kernel_time_s - base[1]
        download = counters.download_time_s - base[2]
    record = ChunkRecord(index=chunk.index, core_lines=chunk.core_lines,
                         ext_lines=chunk.ext_lines, halo=halo,
                         wall_s=wall, upload_s=upload, compute_s=compute,
                         download_s=download, worker=os.getpid())
    return chunk.index, cores, record


def _make_pool(ctx, processes: int, initializer, initargs):
    """Pool construction, separated so tests can force the fallback."""
    return ctx.Pool(processes=processes, initializer=initializer,
                    initargs=initargs)


def _recompute_in_process(tasks, indices, func, initializer, initargs,
                          state, policy: RetryPolicy, extra_retries: int
                          ) -> dict[int, TaskOutcome]:
    """Run the given task indices in-process (the recovery/fallback path).

    Attempt numbers start at ``policy.max_retries + 1`` — disjoint from
    every worker-side attempt — so a fault pinned to a worker attempt
    (e.g. an injected ``os._exit``) can never re-fire in the parent.
    ``extra_retries`` is added to each outcome's retry count to account
    for attempts the pool already lost (0 when no pool ever ran).
    """
    initializer(*initargs)
    try:
        outcomes = {}
        for index in indices:
            outcome = run_with_retry(func, tasks[index], index=index,
                                     policy=policy,
                                     attempt_base=policy.max_retries + 1)
            outcomes[index] = TaskOutcome(
                outcome.value, retries=outcome.retries + extra_retries,
                recovered=True)
        return outcomes
    finally:
        if state is not None:
            state.clear()


def run_tasks(tasks, func, initializer, initargs, n_workers: int,
              state: dict | None = None,
              policy: RetryPolicy | None = None,
              profiler: Profiler | None = None
              ) -> list[TaskOutcome]:
    """Map ``func`` over ``tasks``, through a process pool when possible.

    The shared dispatch engine of this package: ``initializer(*initargs)``
    installs worker-side state (once per pool process), then ``func`` runs
    per task.  With ``n_workers <= 1``, a single task, or a host where
    pools cannot be created (``OSError``), the *same* initializer+func
    pair runs in-process — the fallback path is byte-for-byte the same
    computation.  ``state`` names the module-global dict the initializer
    fills so the in-process path can clear it afterwards.

    Fault tolerance: every task runs under ``policy``'s bounded retry
    loop (worker-side in pools, in-process otherwise), pool results are
    collected with the policy's per-task deadline, and any task the pool
    fails to deliver — a crashed worker, a stalled chunk, a worker-side
    exception — is recomputed in-process, so one dying worker degrades
    the schedule, never the run.  Detecting a *crashed* worker requires
    a finite ``policy.chunk_timeout_s`` (a bare ``multiprocessing.Pool``
    silently drops the in-flight task of a dead worker).  Recoveries are
    recorded as ``"pool_recovery"`` events on ``profiler``.

    Returns one :class:`~repro.resilience.TaskOutcome` per task, in task
    order; ``outcome.value`` is what ``func`` returned.
    """
    tasks = list(tasks)
    if policy is None:
        policy = RetryPolicy()
    outcomes: list[TaskOutcome | None] = [None] * len(tasks)
    if n_workers > 1 and len(tasks) > 1:
        method = ("fork" if "fork" in multiprocessing.get_all_start_methods()
                  else None)
        ctx = multiprocessing.get_context(method)
        try:
            pool = _make_pool(ctx, min(n_workers, len(tasks)),
                              initializer, initargs)
        except OSError as exc:
            pool = None                      # no pool on this host
            failures: dict[int, BaseException] = {-1: exc}
        if pool is not None:
            # the context manager terminate()s on exit, killing any
            # straggler worker still sleeping on a lost task
            with pool:
                collected, failures = collect_async(pool, func, tasks,
                                                    policy)
            for index, outcome in collected.items():
                outcomes[index] = outcome
        missing = [i for i, o in enumerate(outcomes) if o is None]
        if not missing:
            return outcomes
        if profiler is not None:
            for index, exc in sorted(failures.items()):
                profiler.record_event(
                    "pool_recovery", f"{type(exc).__name__}: {exc}",
                    chunk_index=index)
        recovered = _recompute_in_process(
            tasks, missing, func, initializer, initargs, state, policy,
            extra_retries=0 if pool is None else 1)
        for index, outcome in recovered.items():
            outcomes[index] = outcome
        return outcomes
    initializer(*initargs)
    try:
        return [run_with_retry(func, task, index=index, policy=policy)
                for index, task in enumerate(tasks)]
    finally:
        if state is not None:
            state.clear()


def degrade_ext_lines(current: int, floor: int) -> int:
    """The next (halved) ``max_ext_lines`` after an OOM, or raise-worthy.

    Returns ``max(floor, current // 2)``; when that is not strictly
    smaller than ``current`` the degradation has bottomed out at the
    halo-imposed minimum and the caller must re-raise.
    """
    return max(floor, current // 2)


def run_chunked_parallel(graph: StageGraph, inputs: dict[str, Stream],
                         executor, *, max_ext_lines: int,
                         halo: int | None = None, n_workers: int = 0,
                         profiler: Profiler | None = None,
                         policy: RetryPolicy | None = None
                         ) -> dict[str, Stream]:
    """Run a stage graph chunk by chunk across a process pool.

    The parallel counterpart of
    :func:`repro.stream.chunked.run_chunked` — same parameters, same
    chunk plan, bit-identical outputs; chunks merely execute
    concurrently.

    Parameters
    ----------
    graph, inputs, executor, max_ext_lines, halo:
        As in :func:`~repro.stream.chunked.run_chunked`.  The executor
        must be picklable (both :class:`~repro.stream.executor.CpuExecutor`
        and :class:`~repro.stream.executor.GpuExecutor` are); each worker
        process operates on its own copy, so a GPU executor's device
        counters accumulate per worker — the per-chunk
        upload/compute/download split still reaches the caller through
        the profiler records.
    n_workers:
        Pool size; 0 means one worker per CPU core, 1 forces the serial
        in-process path.
    profiler:
        Optional :class:`~repro.profiling.profiler.Profiler`; receives
        one :class:`~repro.profiling.profiler.ChunkRecord` per chunk,
        plus resilience events (retries, recoveries, degradations).
    policy:
        Optional :class:`~repro.resilience.RetryPolicy` — per-task
        retry budget and deadline (see :func:`run_tasks`).

    A :class:`~repro.errors.GpuOutOfMemoryError` raised during execution
    triggers graceful degradation: the run is re-planned with halved
    ``max_ext_lines`` (down to ``2 * halo + 1``, the smallest chunk that
    still holds one core line plus its halos) and retried.  Chunk
    geometry does not affect results, so degraded runs stay
    bit-identical.

    Returns
    -------
    dict of stitched output streams, identical to serial execution.
    """
    workers = resolve_workers(n_workers)
    ext_lines = max_ext_lines
    while True:
        plan = plan_stream_chunks(graph, inputs, max_ext_lines=ext_lines,
                                  halo=halo)
        try:
            results = run_tasks(plan, _run_chunk, _init_worker,
                                (graph, inputs, executor, plan.halo),
                                workers, state=_STATE, policy=policy,
                                profiler=profiler)
            break
        except GpuOutOfMemoryError as exc:
            smaller = degrade_ext_lines(ext_lines, 2 * plan.halo + 1)
            if smaller >= ext_lines:
                raise
            if profiler is not None:
                detail = f"max_ext_lines {ext_lines} -> {smaller}"
                if exc.requested is not None:
                    detail += (f" (requested={exc.requested}, "
                               f"free={exc.free})")
                profiler.record_event("oom_degrade", detail)
            ext_lines = smaller

    lines, samples = plan.lines, plan.samples
    outputs: dict[str, np.ndarray] = {}
    for outcome in results:
        index, cores, record = outcome.value
        chunk = plan.chunks[index]
        for name, core in cores.items():
            if name not in outputs:
                outputs[name] = np.empty((lines, samples, 4),
                                         dtype=np.float32)
            outputs[name][chunk.core_start:chunk.core_stop] = core
        if profiler is not None:
            if outcome.retries:
                record = replace(record, retries=outcome.retries)
                profiler.record_event(
                    "retry", f"chunk took {outcome.retries} extra "
                    f"attempt(s)"
                    + (" (recovered in-process)" if outcome.recovered
                       else ""),
                    chunk_index=index)
            profiler.record_chunk(record)
    return {name: Stream(name, data) for name, data in outputs.items()}
