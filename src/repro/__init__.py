"""repro — Parallel Hyperspectral Image Processing on Commodity Graphics
Hardware (ICPPW 2006), reproduced in Python.

The library implements the paper's Automated Morphological Classification
(AMC) algorithm and everything underneath it: a hyperspectral data
substrate with a synthetic AVIRIS-like scene generator, a stream
programming framework, a simulated 2003/2005-era GPU (textures, a
Cg-like shader IR, a cost model parameterized by the real boards' specs),
CPU baselines for the paper's Pentium 4 platforms, and the benchmark
harness that regenerates every table and figure of the evaluation.

Quick start::

    from repro.hsi import generate_indian_pines_like
    from repro.core import run_amc, AMCConfig

    scene = generate_indian_pines_like(128, 128)
    result = run_amc(scene.cube, AMCConfig(n_classes=45, backend="gpu"),
                     ground_truth=scene.ground_truth,
                     class_names=scene.class_names)
    print(result.report.format_table())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.core import AMCConfig, AMCResult, run_amc
from repro.errors import ReproError
from repro.hsi import HyperCube, SyntheticScene, generate_indian_pines_like
from repro.gpu import VirtualGPU
from repro.pipeline import run_amc_batch

__version__ = "1.0.0"

__all__ = [
    "AMCConfig",
    "AMCResult",
    "HyperCube",
    "ReproError",
    "SyntheticScene",
    "VirtualGPU",
    "__version__",
    "generate_indian_pines_like",
    "run_amc",
    "run_amc_batch",
]
