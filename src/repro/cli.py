"""Command-line interface.

Eight subcommands cover the library's day-to-day uses::

    repro generate  out.raw --lines 128 --samples 128    # synthesize a scene
    repro classify  out.raw --classes 45 --backend gpu   # run AMC
    repro classify  out.raw --workers 4 --profile        # multi-core + report
    repro detect    out.raw --algo sam --target-class 2  # target detection
    repro reduce    out.raw --components 4               # PCA band reduction
    repro serve     --socket /tmp/amc.sock               # job server
    repro submit    out.raw --socket /tmp/amc.sock       # client mode
    repro bench     --table 4                            # modeled tables
    repro info                                           # platform specs

``generate`` writes an ENVI-style cube (``<path>`` + ``<path>.hdr``)
plus ground truth as ``<path>.gt.ppm`` (color map) and ``<path>.gt.npy``
(label array); ``classify`` accepts any ENVI cube (not only generated
ones) and writes the MEI image (``<path>.mei.pgm``) and classification
map (``<path>.classes.ppm``) next to it.

``classify --workers N`` runs the morphological stage chunk-parallel
across N worker processes (0 = all cores) with results identical to
serial; ``--profile`` prints a stage/chunk timing report, or writes it
as JSON when given a path (``--profile report.json``).

Robustness knobs (see ``docs/robustness.md``): ``--retries`` and
``--chunk-timeout-s`` configure the per-chunk retry budget and deadline
of the parallel paths; ``classify`` accepts *multiple* cube paths (a
batch through one pool) and ``--on-error raise|skip|collect`` decides
whether one corrupt scene aborts, is skipped, or is reported alongside
the successes.

``detect`` and ``reduce`` run the non-AMC workloads of
:mod:`repro.workloads` (see ``docs/workloads.md``): their ``--algo``
choices come straight from the registry, so a newly registered
detector or reducer appears in the CLI without touching this module.
``detect --target-class K`` derives the target spectrum (mean of the
ground-truth class-K pixels) and the evaluation mask from the
``.gt.npy`` sidecar.

``serve`` runs the :mod:`repro.serving` job server on a unix socket;
``submit`` is the matching client — it ships a cube *reference* (a
path) plus parameters (and optionally ``--workload`` /
``--target-class``), and duplicate submissions are deduped server-side
through in-flight coalescing and the content-addressed result cache
(see ``docs/serving.md``).  ``serve --state-dir DIR`` turns on the
durable tier (crash-safe job journal + disk result cache; interrupted
jobs replay on restart) and ``--watchdog-deadline-s`` the stuck-job
watchdog; ``submit --retry-budget-s`` rides through busy rejections
and restarts with exponential backoff, and ``submit --health`` prints
the server's self-diagnosis snapshot (see ``docs/robustness.md``).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.hsi import generate_indian_pines_like
    from repro.hsi.envi import write_cube
    from repro.viz import write_class_map_ppm

    scene = generate_indian_pines_like(args.lines, args.samples,
                                       band_count=args.bands,
                                       seed=args.seed)
    data_path, hdr_path = write_cube(scene.cube, args.path)
    gt_path = write_class_map_ppm(scene.ground_truth,
                                  args.path + ".gt.ppm",
                                  n_classes=scene.n_classes)
    np.save(args.path + ".gt.npy", scene.ground_truth)
    print(f"scene:        {scene.cube}")
    print(f"cube:         {data_path} (+ {hdr_path})")
    print(f"ground truth: {gt_path} (labels in {args.path}.gt.npy)")
    return 0


def _load_scene(path: str):
    """Read one ENVI cube plus its optional ``.gt.npy`` ground truth."""
    from repro.hsi.envi import read_cube

    cube = read_cube(path)
    print(f"loaded {cube}")
    ground_truth = None
    try:
        ground_truth = np.load(path + ".gt.npy")
        print("found ground truth; accuracy will be reported")
    except FileNotFoundError:
        pass
    return cube, ground_truth


def _write_outputs(result, path: str) -> None:
    """Write one cube's MEI image and classification map next to it."""
    from repro.viz import write_class_map_ppm, write_pgm

    mei_path = write_pgm(result.mei, path + ".mei.pgm")
    cls_path = write_class_map_ppm(
        result.labels, path + ".classes.ppm",
        n_classes=int(result.labels.max()))
    print(f"MEI image:          {mei_path}")
    print(f"classification map: {cls_path}")
    if result.report is not None:
        print(f"overall accuracy:   "
              f"{result.report.overall_accuracy:.2f}%  "
              f"(kappa {result.report.kappa:.3f})")


def _classify_batch(args: argparse.Namespace, config) -> int:
    """Batch mode of ``classify``: many cubes through one pool."""
    from repro.pipeline import BatchItemError, run_amc_batch

    scenes = [_load_scene(path) for path in args.path]
    profiler = None
    if args.profile is not None:
        from repro.profiling import Profiler

        profiler = Profiler(meta={"cubes": len(scenes),
                                  "backend": args.backend,
                                  "workers": config.n_workers,
                                  "on_error": args.on_error})
    # run "skip" as "collect" so failures keep their cube index — the
    # CLI applies the skip (no outputs) while still naming the cube
    effective = "collect" if args.on_error == "skip" else args.on_error
    results = run_amc_batch([cube for cube, _ in scenes], config,
                            ground_truths=[gt for _, gt in scenes],
                            profiler=profiler, on_error=effective)
    failed = 0
    for path, result in zip(args.path, results):
        if isinstance(result, BatchItemError):
            failed += 1
            verb = "skipped" if args.on_error == "skip" else "failed"
            print(f"{path}: {verb} — {type(result.error).__name__}: "
                  f"{result.error}", file=sys.stderr)
            continue
        _write_outputs(result, path)
    if profiler is not None:
        rep = profiler.report()
        if args.profile == "-":
            print(rep.to_text())
        else:
            print(f"profile report:     {rep.save(args.profile)}")
    return 1 if failed == len(results) and failed else 0


def _cmd_classify(args: argparse.Namespace) -> int:
    from repro.backends import get_backend
    from repro.core import AMCConfig, run_amc
    from repro.parallel import resolve_workers

    workers = resolve_workers(args.workers)
    config = AMCConfig(n_classes=args.classes, se_radius=args.radius,
                       backend=args.backend, n_workers=workers,
                       max_retries=args.retries,
                       chunk_timeout_s=args.chunk_timeout_s,
                       optimize=getattr(args, "optimize", "fuse"))
    if len(args.path) > 1:
        if args.trace:
            print("--trace requires a single cube path",
                  file=sys.stderr)
            return 2
        return _classify_batch(args, config)
    args.path = args.path[0]

    cube, ground_truth = _load_scene(args.path)
    backend = get_backend(args.backend)
    device = None
    if args.trace:
        if not backend.supports_trace:
            print(f"--trace requires a device backend "
                  f"(--backend {args.backend} has no timeline)",
                  file=sys.stderr)
            return 2
        from repro.gpu import VirtualGPU

        device = VirtualGPU(config.gpu_spec, optimize=config.optimize)
    profiler = None
    if args.profile is not None:
        from repro.profiling import Profiler

        profiler = Profiler(meta={"image": f"{cube.lines}x{cube.samples}x"
                                           f"{cube.bands}",
                                  "backend": args.backend,
                                  "workers": workers})
    result = run_amc(cube, config, ground_truth=ground_truth,
                     profiler=profiler)
    if args.trace:
        # re-run the device stage on a fresh device to capture a clean
        # timeline (run_amc manages its own device internally)
        from repro.gpu.trace import export_chrome_trace

        backend.run(cube.as_bip(), config.se_radius, device=device)
        trace_path = export_chrome_trace(device.counters, args.trace)
        print(f"device timeline:    {trace_path} "
              f"(open in chrome://tracing or Perfetto)")

    _write_outputs(result, args.path)
    if result.gpu_output is not None:
        out = result.gpu_output
        print(f"modeled GPU time:   {out.modeled_time_s * 1e3:.2f} ms "
              f"({out.chunk_count} chunk(s), "
              f"{out.counters['kernel_launches']:.0f} launches)")
    if profiler is not None:
        rep = profiler.report()
        if args.profile == "-":
            print(rep.to_text())
        else:
            print(f"profile report:     {rep.save(args.profile)}")
    return 0


def _print_profile(profiler, destination) -> None:
    """Emit a finished profiler's report per the ``--profile`` flag."""
    report = profiler.report()
    if destination == "-":
        print(report.to_text())
    else:
        print(f"profile report:     {report.save(destination)}")


def _cmd_detect(args: argparse.Namespace) -> int:
    """Run a detection workload (SAM/CEM/RX) on an ENVI cube."""
    from repro.parallel import resolve_workers
    from repro.viz import write_pgm
    from repro.workloads import get_workload

    cube, ground_truth = _load_scene(args.path)
    wl = get_workload(args.algo)
    workers = resolve_workers(args.workers)
    params: dict = {"regularization": args.regularization,
                    "n_workers": workers, "max_retries": args.retries,
                    "chunk_timeout_s": args.chunk_timeout_s}
    if args.max_alarms is not None:
        params["max_alarms"] = args.max_alarms
    mask = None
    if args.target_class is not None:
        if ground_truth is None:
            print("--target-class needs a ground-truth sidecar "
                  f"({args.path}.gt.npy)", file=sys.stderr)
            return 2
        mask = ground_truth == args.target_class
        if not mask.any():
            print(f"ground truth has no pixels of class "
                  f"{args.target_class}", file=sys.stderr)
            return 2
        if wl.requires_target:
            spectrum = cube.as_bip()[mask].mean(axis=0)
            params["target"] = tuple(float(v) for v in spectrum)
    elif wl.requires_target:
        print(f"--algo {wl.name} needs a target spectrum: pass "
              f"--target-class K (with a .gt.npy sidecar)",
              file=sys.stderr)
        return 2
    profiler = None
    if args.profile is not None:
        from repro.profiling import Profiler

        profiler = Profiler(meta={
            "image": f"{cube.lines}x{cube.samples}x{cube.bands}",
            "workload": wl.name, "workers": workers})
    result = wl.run(cube, params, ground_truth=mask, profiler=profiler)
    scores_path = write_pgm(result.scores, f"{args.path}.{wl.name}.pgm")
    print(f"score map:          {scores_path}")
    if result.auc is not None:
        curve = result.curve
        print(f"detection AUC:      {result.auc:.4f}  "
              f"(recall {curve.recall[-1]:.0%} within "
              f"{int(curve.alarms[-1])} alarms)")
    if profiler is not None:
        _print_profile(profiler, args.profile)
    return 0


def _cmd_reduce(args: argparse.Namespace) -> int:
    """Run a band-reduction workload (PCA) on an ENVI cube."""
    from repro.parallel import resolve_workers
    from repro.viz import write_pgm
    from repro.workloads import get_workload

    cube, _ = _load_scene(args.path)
    wl = get_workload(args.algo)
    workers = resolve_workers(args.workers)
    params = {"n_components": args.components, "n_workers": workers,
              "max_retries": args.retries,
              "chunk_timeout_s": args.chunk_timeout_s}
    profiler = None
    if args.profile is not None:
        from repro.profiling import Profiler

        profiler = Profiler(meta={
            "image": f"{cube.lines}x{cube.samples}x{cube.bands}",
            "workload": wl.name, "workers": workers})
    result = wl.run(cube, params, profiler=profiler)
    out_path = f"{args.path}.{wl.name}.npy"
    np.save(out_path, result.transformed)
    total = float(result.scores.sum())
    shares = (result.scores / total if total > 0
              else result.scores)
    print(f"reduced cube:       {out_path} "
          f"({cube.bands} -> {result.transformed.shape[2]} band(s))")
    print("component variance: "
          + ", ".join(f"{s:.1%}" for s in shares))
    first_pc = write_pgm(result.transformed[:, :, 0],
                         f"{args.path}.{wl.name}1.pgm")
    print(f"first component:    {first_pc}")
    if profiler is not None:
        _print_profile(profiler, args.profile)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the AMC job server on a unix socket until ``shutdown``."""
    import asyncio

    from repro.serving import AMCServer, UnixSocketFrontend

    default_params = {"n_classes": args.classes, "se_radius": args.radius,
                      "backend": args.backend,
                      "max_retries": args.retries,
                      "chunk_timeout_s": args.chunk_timeout_s,
                      "n_workers": args.job_workers}

    async def _serve() -> None:
        server = AMCServer(workers=args.workers,
                           queue_size=args.queue_size,
                           cache_entries=args.cache_entries,
                           cache_bytes=args.cache_mb << 20,
                           state_dir=args.state_dir,
                           watchdog_deadline_s=args.watchdog_deadline_s,
                           default_params=default_params)
        async with server:
            frontend = await UnixSocketFrontend(server,
                                                args.socket).start()
            durable = ("" if args.state_dir is None
                       else f", durable state in {args.state_dir}")
            print(f"serving on {args.socket} "
                  f"({args.workers} worker(s), queue {args.queue_size}, "
                  f"cache {args.cache_entries} entries / "
                  f"{args.cache_mb} MiB{durable})")
            recovered = server.counters.recovered
            if recovered:
                print(f"journal replay re-enqueued {recovered} "
                      f"interrupted job(s)")
            print("stop with: repro submit --shutdown "
                  f"--socket {args.socket}")
            sys.stdout.flush()
            await frontend.serve_until_shutdown()
            stats = server.stats()
        counters = stats["counters"]
        cache = stats["cache"]
        print(f"served {counters['submitted']} submission(s): "
              f"{counters['executed']} executed, "
              f"{counters['coalesced']} coalesced, "
              f"{counters['cache_hits']} cache hit(s), "
              f"{counters['rejected']} rejected "
              f"({cache['evictions']} eviction(s))")

    asyncio.run(_serve())
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    """Client mode: submit a cube reference to a running server."""
    import json
    import os

    from repro.serving import request, submit_with_retry

    if args.shutdown:
        response = request(args.socket, {"op": "shutdown"})
        if response.get("ok"):
            print("server stopping")
            return 0
        print(f"error: {response.get('message')}", file=sys.stderr)
        return 1

    if args.health:
        response = request(args.socket, {"op": "health"})
        if not response.get("ok"):
            print(f"error: {response.get('message')}", file=sys.stderr)
            return 1
        print(json.dumps(response["health"], indent=2, sort_keys=True))
        return 0

    if args.path is None:
        print("a cube path is required (or --shutdown/--health)",
              file=sys.stderr)
        return 2
    params = {"n_classes": args.classes, "se_radius": args.radius,
              "backend": args.backend, "max_retries": args.retries,
              "chunk_timeout_s": args.chunk_timeout_s}
    payload = {
        "op": "submit", "cube": args.path, "params": params,
        "wait": not args.no_wait, "profile": args.profile,
        "write_outputs": args.write_outputs}
    if args.workload is not None:
        import dataclasses

        from repro.workloads import get_workload

        # the AMC flag values above speak AMCConfig; keep only the
        # fields the chosen workload's config schema actually declares
        wl = get_workload(args.workload)
        declared = {f.name for f in dataclasses.fields(wl.config_type)}
        payload["params"] = {name: value for name, value in params.items()
                             if name in declared}
        payload["workload"] = wl.name
    if args.target_class is not None:
        payload["target_class"] = args.target_class
    # pid-seeded jitter: deterministic per process, decorrelated
    # across the concurrent clients that matter for herd avoidance
    response = submit_with_retry(args.socket, payload,
                                 retry_budget_s=args.retry_budget_s,
                                 jitter_seed=os.getpid())
    if not response.get("ok"):
        message = f"{response.get('error')}: {response.get('message')}"
        if "retry_after_s" in response:
            message += (f" (busy — retry in "
                        f"{response['retry_after_s']:.1f}s)")
        print(message, file=sys.stderr)
        return 3 if "retry_after_s" in response else 1
    job = response["job"]
    origin = ("cache" if job["from_cache"]
              else f"executed (+{job['coalesced']} coalesced)")
    label = job.get("workload") or "job"
    print(f"{label} job {job['job_id']}: {job['state']} [{origin}]")
    if job.get("result_sha256"):
        print(f"result sha256:      {job['result_sha256']}")
    if job.get("overall_accuracy") is not None:
        print(f"overall accuracy:   {job['overall_accuracy']:.2f}%")
    if job.get("error"):
        print(f"error:              {job['error']}", file=sys.stderr)
    for kind, path in (response.get("outputs") or {}).items():
        print(f"{kind + ':':<20}{path}")
    if args.profile and response.get("profile"):
        from repro.profiling import ProfileReport

        print(ProfileReport.from_dict(response["profile"]).to_text())
    return 0 if job["state"] != "failed" else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import format_table, paper_size_points, platform_matrix
    from repro.bench.scaling import speedup_summary
    from repro.cpu import GCC40, ICC90

    build = GCC40 if args.table == 4 else ICC90
    points = paper_size_points()
    columns = platform_matrix(points, cpu_build=build)
    rows = [[f"{p.size_mb:.0f}", columns["P4 C"][i],
             columns["Prescott"][i], columns["FX5950 U"][i],
             columns["7800 GTX"][i]]
            for i, p in enumerate(points)]
    print(format_table(
        f"Table {args.table} — modeled execution time (ms), "
        f"{build.name} builds",
        ["Size (MB)", "P4 C", "Prescott", "FX5950 U", "7800 GTX"], rows))
    ratios = speedup_summary(columns)
    print(f"\nP4 / 7800 GTX speedup: {ratios['p4_over_7800']:.1f}x")
    return 0


def _cmd_info(_: argparse.Namespace) -> int:
    from repro.cpu import PENTIUM4_NORTHWOOD, PRESCOTT_660
    from repro.gpu import GEFORCE_7800GTX, GEFORCE_FX5950U

    print("GPU platforms (paper Table 1):")
    for spec in (GEFORCE_FX5950U, GEFORCE_7800GTX):
        print(f"  {spec.name} ({spec.year}, {spec.architecture}): "
              f"{spec.n_fragment_pipes} pipes @ "
              f"{spec.core_clock_hz / 1e6:.0f} MHz, "
              f"{spec.mem_bandwidth / 1e9:.1f} GB/s, "
              f"{spec.vram_bytes >> 20} MiB VRAM")
    print("CPU platforms (paper Table 2):")
    for spec in (PENTIUM4_NORTHWOOD, PRESCOTT_660):
        print(f"  {spec.name} ({spec.year}): "
              f"{spec.clock_hz / 1e9:.1f} GHz, "
              f"FSB {spec.fsb_bandwidth / 1e9:.1f} GB/s, "
              f"L2 {spec.l2_bytes >> 10} KiB")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AMC hyperspectral classification on a simulated "
                    "commodity GPU (ICPPW 2006 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="synthesize an ENVI scene")
    gen.add_argument("path", help="output path for the raw cube")
    gen.add_argument("--lines", type=int, default=128)
    gen.add_argument("--samples", type=int, default=128)
    gen.add_argument("--bands", type=int, default=224)
    gen.add_argument("--seed", type=int, default=2006)
    gen.set_defaults(func=_cmd_generate)

    from repro.backends import backend_names

    cls = sub.add_parser("classify", help="run AMC on an ENVI cube")
    cls.add_argument("path", nargs="+",
                     help="path(s) to raw cube(s) (with .hdr); several "
                          "paths run as a batch through one pool")
    cls.add_argument("--classes", type=int, default=45)
    cls.add_argument("--radius", type=int, default=1)
    cls.add_argument("--backend", choices=backend_names(),
                     default="reference")
    cls.add_argument("--trace", metavar="PATH", default=None,
                     help="with --backend gpu: write a Chrome-trace "
                          "timeline of the device work to PATH")
    cls.add_argument("--workers", type=int, default=1, metavar="N",
                     help="worker processes for the chunk-parallel "
                          "morphological stage (0 = all cores; results "
                          "are identical to serial)")
    cls.add_argument("--profile", nargs="?", const="-", default=None,
                     metavar="PATH",
                     help="emit a stage/chunk timing report: text to "
                          "stdout, or JSON to PATH when given")
    cls.add_argument("--retries", type=int, default=0, metavar="N",
                     help="extra attempts per chunk before the run "
                          "fails (chunk independence makes retries "
                          "bit-identical)")
    cls.add_argument("--chunk-timeout-s", type=float, default=None,
                     metavar="S",
                     help="per-chunk deadline when collecting pool "
                          "results; needed to detect crashed workers "
                          "(lost chunks are recomputed in-process)")
    cls.add_argument("--optimize", choices=("fuse", "none"),
                     default="fuse",
                     help="execution mode: 'fuse' runs the fused fast "
                          "paths (pass fusion, strided fetches, "
                          "cross-chunk border sharing), 'none' the "
                          "historical per-pass oracle; results are "
                          "bit-identical")
    cls.add_argument("--on-error", choices=("raise", "skip", "collect"),
                     default="raise",
                     help="batch mode: what one failing cube does — "
                          "abort the batch, skip the cube, or report "
                          "it alongside the successes")
    cls.set_defaults(func=_cmd_classify)

    from repro.workloads import workload_names

    def add_execution_flags(cmd) -> None:
        """The shared chunk-parallel execution knobs."""
        cmd.add_argument("--workers", type=int, default=1, metavar="N",
                         help="worker processes for the chunk-parallel "
                              "stage (0 = all cores; results are "
                              "identical to serial)")
        cmd.add_argument("--retries", type=int, default=0, metavar="N",
                         help="extra attempts per chunk before the run "
                              "fails")
        cmd.add_argument("--chunk-timeout-s", type=float, default=None,
                         metavar="S", help="per-chunk deadline when "
                                           "collecting pool results")
        cmd.add_argument("--profile", nargs="?", const="-", default=None,
                         metavar="PATH",
                         help="emit a stage/chunk timing report: text "
                              "to stdout, or JSON to PATH when given")

    det = sub.add_parser(
        "detect", help="run a detection workload on an ENVI cube")
    det.add_argument("path", help="path to a raw cube (with .hdr)")
    det.add_argument("--algo", choices=workload_names(kind="detection"),
                     default="sam",
                     help="registered detection workload")
    det.add_argument("--target-class", type=int, default=None,
                     metavar="K",
                     help="ground-truth class whose mean spectrum is "
                          "the target and whose footprint is the "
                          "evaluation mask (needs <path>.gt.npy)")
    det.add_argument("--regularization", type=float, default=1e-6,
                     metavar="X",
                     help="ridge factor on the scene second-moment "
                          "matrix (CEM/RX)")
    det.add_argument("--max-alarms", type=int, default=None, metavar="N",
                     help="detection-curve horizon (default: 10%% of "
                          "the scene)")
    add_execution_flags(det)
    det.set_defaults(func=_cmd_detect)

    red = sub.add_parser(
        "reduce", help="run a band-reduction workload on an ENVI cube")
    red.add_argument("path", help="path to a raw cube (with .hdr)")
    red.add_argument("--algo", choices=workload_names(kind="reduction"),
                     default="pca",
                     help="registered reduction workload")
    red.add_argument("--components", type=int, default=3, metavar="K",
                     help="number of leading components to keep")
    add_execution_flags(red)
    red.set_defaults(func=_cmd_reduce)

    def add_param_flags(cmd) -> None:
        """The shared AMC parameter flags of serve/submit."""
        cmd.add_argument("--classes", type=int, default=45)
        cmd.add_argument("--radius", type=int, default=1)
        cmd.add_argument("--backend", choices=backend_names(),
                         default="reference")
        cmd.add_argument("--retries", type=int, default=0, metavar="N",
                         help="per-chunk retry budget of each job")
        cmd.add_argument("--chunk-timeout-s", type=float, default=None,
                         metavar="S",
                         help="per-chunk deadline of each job")

    srv = sub.add_parser(
        "serve", help="run the AMC job server on a unix socket")
    srv.add_argument("--socket", default="/tmp/repro-amc.sock",
                     metavar="PATH", help="unix socket path to bind")
    srv.add_argument("--workers", type=int, default=2, metavar="N",
                     help="concurrent server worker threads (each owns "
                          "a persistent pipeline)")
    srv.add_argument("--job-workers", type=int, default=1, metavar="N",
                     help="chunk-parallel worker processes *inside* "
                          "each job (AMCConfig.n_workers)")
    srv.add_argument("--queue-size", type=int, default=16, metavar="N",
                     help="admission bound: waiting jobs beyond this "
                          "are rejected with a retry-after hint")
    srv.add_argument("--cache-entries", type=int, default=64, metavar="N",
                     help="result-cache entry budget")
    srv.add_argument("--cache-mb", type=int, default=256, metavar="MB",
                     help="result-cache payload budget")
    srv.add_argument("--state-dir", default=None, metavar="DIR",
                     help="enable the durable tier: write-ahead job "
                          "journal + disk result cache here; on "
                          "restart the journal replays (interrupted "
                          "jobs re-enqueue, finished ones are not "
                          "re-executed)")
    srv.add_argument("--watchdog-deadline-s", type=float, default=None,
                     metavar="S",
                     help="enable the stuck-job watchdog: running jobs "
                          "whose executor heartbeat is older than this "
                          "are requeued under their retry budget")
    add_param_flags(srv)
    srv.set_defaults(func=_cmd_serve)

    sbm = sub.add_parser(
        "submit", help="submit a cube to a running job server")
    sbm.add_argument("path", nargs="?", default=None,
                     help="path to a raw cube (with .hdr); the server "
                          "loads it, so the path must be visible to the "
                          "server process")
    sbm.add_argument("--socket", default="/tmp/repro-amc.sock",
                     metavar="PATH", help="unix socket of the server")
    sbm.add_argument("--no-wait", action="store_true",
                     help="return the job id immediately instead of "
                          "waiting for completion")
    sbm.add_argument("--profile", action="store_true",
                     help="print the job's stage/chunk timing report")
    sbm.add_argument("--write-outputs", action="store_true",
                     help="server writes .mei.pgm / .classes.ppm next "
                          "to the cube")
    sbm.add_argument("--shutdown", action="store_true",
                     help="ask the server to stop instead of submitting")
    sbm.add_argument("--health", action="store_true",
                     help="print the server's health snapshot (queue, "
                          "caches, journal, watchdog) instead of "
                          "submitting")
    sbm.add_argument("--retry-budget-s", type=float, default=0.0,
                     metavar="S",
                     help="retry busy rejections and connection "
                          "failures with exponential backoff + jitter "
                          "for up to this many seconds (0 = single "
                          "attempt, the historical exit-3-on-busy "
                          "behavior)")
    sbm.add_argument("--workload", choices=workload_names(),
                     default=None,
                     help="registered workload to run (default: the "
                          "server's default, normally amc)")
    sbm.add_argument("--target-class", type=int, default=None,
                     metavar="K",
                     help="for detection workloads: derive the target "
                          "spectrum and evaluation mask from ground-"
                          "truth class K (server-side)")
    add_param_flags(sbm)
    sbm.set_defaults(func=_cmd_submit)

    bench = sub.add_parser("bench", help="print a modeled paper table")
    bench.add_argument("--table", type=int, choices=(4, 5), default=4)
    bench.set_defaults(func=_cmd_bench)

    info = sub.add_parser("info", help="list the simulated platforms")
    info.set_defaults(func=_cmd_info)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point (console script ``repro``)."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
