"""Command-line interface.

Four subcommands cover the library's day-to-day uses::

    repro generate  out.raw --lines 128 --samples 128    # synthesize a scene
    repro classify  out.raw --classes 45 --backend gpu   # run AMC
    repro classify  out.raw --workers 4 --profile        # multi-core + report
    repro bench     --table 4                            # modeled tables
    repro info                                           # platform specs

``generate`` writes an ENVI-style cube (``<path>`` + ``<path>.hdr``)
plus ground truth as ``<path>.gt.ppm`` (color map) and ``<path>.gt.npy``
(label array); ``classify`` accepts any ENVI cube (not only generated
ones) and writes the MEI image (``<path>.mei.pgm``) and classification
map (``<path>.classes.ppm``) next to it.

``classify --workers N`` runs the morphological stage chunk-parallel
across N worker processes (0 = all cores) with results identical to
serial; ``--profile`` prints a stage/chunk timing report, or writes it
as JSON when given a path (``--profile report.json``).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.hsi import generate_indian_pines_like
    from repro.hsi.envi import write_cube
    from repro.viz import write_class_map_ppm

    scene = generate_indian_pines_like(args.lines, args.samples,
                                       band_count=args.bands,
                                       seed=args.seed)
    data_path, hdr_path = write_cube(scene.cube, args.path)
    gt_path = write_class_map_ppm(scene.ground_truth,
                                  args.path + ".gt.ppm",
                                  n_classes=scene.n_classes)
    np.save(args.path + ".gt.npy", scene.ground_truth)
    print(f"scene:        {scene.cube}")
    print(f"cube:         {data_path} (+ {hdr_path})")
    print(f"ground truth: {gt_path} (labels in {args.path}.gt.npy)")
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    from repro.backends import get_backend
    from repro.core import AMCConfig, run_amc
    from repro.hsi.envi import read_cube
    from repro.viz import write_class_map_ppm, write_pgm

    cube = read_cube(args.path)
    print(f"loaded {cube}")
    ground_truth = None
    try:
        ground_truth = np.load(args.path + ".gt.npy")
        print("found ground truth; accuracy will be reported")
    except FileNotFoundError:
        pass

    from repro.parallel import resolve_workers

    workers = resolve_workers(args.workers)
    config = AMCConfig(n_classes=args.classes, se_radius=args.radius,
                       backend=args.backend, n_workers=workers)
    backend = get_backend(args.backend)
    device = None
    if args.trace:
        if not backend.supports_trace:
            print(f"--trace requires a device backend "
                  f"(--backend {args.backend} has no timeline)",
                  file=sys.stderr)
            return 2
        from repro.gpu import VirtualGPU

        device = VirtualGPU(config.gpu_spec)
    profiler = None
    if args.profile is not None:
        from repro.profiling import Profiler

        profiler = Profiler(meta={"image": f"{cube.lines}x{cube.samples}x"
                                           f"{cube.bands}",
                                  "backend": args.backend,
                                  "workers": workers})
    result = run_amc(cube, config, ground_truth=ground_truth,
                     profiler=profiler)
    if args.trace:
        # re-run the device stage on a fresh device to capture a clean
        # timeline (run_amc manages its own device internally)
        from repro.gpu.trace import export_chrome_trace

        backend.run(cube.as_bip(), config.se_radius, device=device)
        trace_path = export_chrome_trace(device.counters, args.trace)
        print(f"device timeline:    {trace_path} "
              f"(open in chrome://tracing or Perfetto)")

    mei_path = write_pgm(result.mei, args.path + ".mei.pgm")
    cls_path = write_class_map_ppm(
        result.labels, args.path + ".classes.ppm",
        n_classes=int(result.labels.max()))
    print(f"MEI image:          {mei_path}")
    print(f"classification map: {cls_path}")
    if result.report is not None:
        print(f"overall accuracy:   "
              f"{result.report.overall_accuracy:.2f}%  "
              f"(kappa {result.report.kappa:.3f})")
    if result.gpu_output is not None:
        out = result.gpu_output
        print(f"modeled GPU time:   {out.modeled_time_s * 1e3:.2f} ms "
              f"({out.chunk_count} chunk(s), "
              f"{out.counters['kernel_launches']:.0f} launches)")
    if profiler is not None:
        rep = profiler.report()
        if args.profile == "-":
            print(rep.to_text())
        else:
            print(f"profile report:     {rep.save(args.profile)}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import format_table, paper_size_points, platform_matrix
    from repro.bench.scaling import speedup_summary
    from repro.cpu import GCC40, ICC90

    build = GCC40 if args.table == 4 else ICC90
    points = paper_size_points()
    columns = platform_matrix(points, cpu_build=build)
    rows = [[f"{p.size_mb:.0f}", columns["P4 C"][i],
             columns["Prescott"][i], columns["FX5950 U"][i],
             columns["7800 GTX"][i]]
            for i, p in enumerate(points)]
    print(format_table(
        f"Table {args.table} — modeled execution time (ms), "
        f"{build.name} builds",
        ["Size (MB)", "P4 C", "Prescott", "FX5950 U", "7800 GTX"], rows))
    ratios = speedup_summary(columns)
    print(f"\nP4 / 7800 GTX speedup: {ratios['p4_over_7800']:.1f}x")
    return 0


def _cmd_info(_: argparse.Namespace) -> int:
    from repro.cpu import PENTIUM4_NORTHWOOD, PRESCOTT_660
    from repro.gpu import GEFORCE_7800GTX, GEFORCE_FX5950U

    print("GPU platforms (paper Table 1):")
    for spec in (GEFORCE_FX5950U, GEFORCE_7800GTX):
        print(f"  {spec.name} ({spec.year}, {spec.architecture}): "
              f"{spec.n_fragment_pipes} pipes @ "
              f"{spec.core_clock_hz / 1e6:.0f} MHz, "
              f"{spec.mem_bandwidth / 1e9:.1f} GB/s, "
              f"{spec.vram_bytes >> 20} MiB VRAM")
    print("CPU platforms (paper Table 2):")
    for spec in (PENTIUM4_NORTHWOOD, PRESCOTT_660):
        print(f"  {spec.name} ({spec.year}): "
              f"{spec.clock_hz / 1e9:.1f} GHz, "
              f"FSB {spec.fsb_bandwidth / 1e9:.1f} GB/s, "
              f"L2 {spec.l2_bytes >> 10} KiB")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AMC hyperspectral classification on a simulated "
                    "commodity GPU (ICPPW 2006 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="synthesize an ENVI scene")
    gen.add_argument("path", help="output path for the raw cube")
    gen.add_argument("--lines", type=int, default=128)
    gen.add_argument("--samples", type=int, default=128)
    gen.add_argument("--bands", type=int, default=224)
    gen.add_argument("--seed", type=int, default=2006)
    gen.set_defaults(func=_cmd_generate)

    from repro.backends import backend_names

    cls = sub.add_parser("classify", help="run AMC on an ENVI cube")
    cls.add_argument("path", help="path to the raw cube (with .hdr)")
    cls.add_argument("--classes", type=int, default=45)
    cls.add_argument("--radius", type=int, default=1)
    cls.add_argument("--backend", choices=backend_names(),
                     default="reference")
    cls.add_argument("--trace", metavar="PATH", default=None,
                     help="with --backend gpu: write a Chrome-trace "
                          "timeline of the device work to PATH")
    cls.add_argument("--workers", type=int, default=1, metavar="N",
                     help="worker processes for the chunk-parallel "
                          "morphological stage (0 = all cores; results "
                          "are identical to serial)")
    cls.add_argument("--profile", nargs="?", const="-", default=None,
                     metavar="PATH",
                     help="emit a stage/chunk timing report: text to "
                          "stdout, or JSON to PATH when given")
    cls.set_defaults(func=_cmd_classify)

    bench = sub.add_parser("bench", help="print a modeled paper table")
    bench.add_argument("--table", type=int, choices=(4, 5), default=4)
    bench.set_defaults(func=_cmd_bench)

    info = sub.add_parser("info", help="list the simulated platforms")
    info.set_defaults(func=_cmd_info)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point (console script ``repro``)."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
