#!/usr/bin/env python
"""Quickstart: classify a synthetic hyperspectral scene with AMC.

Generates a small Indian-Pines-like scene, runs the full Automated
Morphological Classification pipeline on the vectorized CPU reference
backend, and prints the paper-style accuracy report plus an ASCII view
of the morphological eccentricity index.

Run:  python examples/quickstart.py
"""

from repro.core import AMCConfig, run_amc
from repro.hsi import generate_indian_pines_like
from repro.viz import render_ascii


def main() -> None:
    print("Generating a 96x96 synthetic AVIRIS-like scene "
          "(224 channels, 30+ land-cover classes)...")
    scene = generate_indian_pines_like(96, 96, seed=2006)
    cube = scene.cube
    print(f"  {cube}")

    print("\nRunning AMC (3x3 structuring element, 45 endmembers, "
          "reference backend)...")
    config = AMCConfig(n_classes=45, se_radius=1, backend="reference")
    result = run_amc(cube, config, ground_truth=scene.ground_truth,
                     class_names=scene.class_names)

    print("\nMorphological eccentricity index (bright = spectrally "
          "eccentric neighbourhood):")
    print(render_ascii(result.mei, max_width=64, max_height=24))

    print("\nClassification accuracy against the generator's ground truth:")
    print(result.report.format_table())
    print(f"\nkappa = {result.report.kappa:.3f}")


if __name__ == "__main__":
    main()
