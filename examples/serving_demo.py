#!/usr/bin/env python
"""AMC as a service: coalescing, caching, and per-job profiles.

The paper's usage pattern is recurrent — the same scene re-analyzed
many times as parameters are tuned — which is exactly what the serving
layer (:mod:`repro.serving`) exists for.  This demo drives an
in-process :class:`~repro.serving.AMCServer` (no sockets, no CLI)
through the situations the layer is built around:

1. three *concurrent identical* submissions — the coalescer folds them
   into one job and one pipeline execution;
2. a *distinct* request (different parameters) — a separate job;
3. the identical request again, later — a cache hit, served without
   touching the queue;
4. per-job profiler reports and the server's stats snapshot, showing
   the hit/miss counters and the execution ledger.

Run:  python examples/serving_demo.py
"""

import asyncio

from repro.hsi import SceneParams, generate_scene
from repro.serving import AMCServer


async def demo() -> None:
    scene = generate_scene(SceneParams(lines=32, samples=32,
                                       band_count=32, seed=9,
                                       min_field=5))
    cube = scene.cube
    base = {"n_classes": 4}

    async with AMCServer(workers=2) as server:
        # 1. three identical submissions, in flight together
        a, b, c = await asyncio.gather(
            server.submit(cube, base, ground_truth=scene.ground_truth),
            server.submit(cube, base, ground_truth=scene.ground_truth),
            server.submit(cube, base, ground_truth=scene.ground_truth))
        print(f"identical submissions -> one job: {a is b is c}")

        # 2. a distinct request runs as its own job
        other = await server.submit(cube, {"n_classes": 6},
                                    ground_truth=scene.ground_truth)
        print(f"distinct params -> new job: {other is not a}")

        await server.wait(a.job_id)
        await server.wait(other.job_id)

        # 3. the same request again: served from the cache, born done
        again = await server.submit(cube, base,
                                    ground_truth=scene.ground_truth)
        print(f"resubmission from cache: {again.from_cache}, "
              f"sha matches: {again.result_sha256 == a.result_sha256}")

        # 4. what did each job cost?  every executed job carries the
        # standard per-stage profile; the cache hit reuses the original
        for job in (a, other):
            status = job.status()
            stages = {s.name: s.wall_s * 1e3 for s in job.report.stages}
            slowest = max(stages, key=stages.get)
            print(f"job {status.job_id}: {status.state}, "
                  f"accuracy {status.overall_accuracy:.2f}%, "
                  f"coalesced +{status.coalesced}, "
                  f"slowest stage {slowest} "
                  f"({stages[slowest]:.1f} ms)")

        stats = server.stats()
        counters, cache = stats["counters"], stats["cache"]
        print(f"submissions: {counters['submitted']}, "
              f"executed: {counters['executed']}, "
              f"coalesced: {counters['coalesced']}, "
              f"cache hits: {cache['hits']}, misses: {cache['misses']}")
        print(f"pipeline executions for 5 submissions: "
              f"{stats['pipeline_runs']}")


def main() -> None:
    asyncio.run(demo())


if __name__ == "__main__":
    main()
