#!/usr/bin/env python
"""Anomaly / target detection: the paper's MEI versus the RX benchmark.

The paper's introduction motivates hyperspectral processing with
time-critical detection tasks (military targets, biological threats,
chemical spills).  The MEI image AMC computes is directly an *anomaly
score*: a man-made pixel makes its neighbourhood spectrally eccentric.

This example plants sub-pixel targets into a natural scene with the
library's implantation utility, scores the scene with both the
(GPU-executed) MEI and the classical Reed-Xiaoli detector, and compares
their detection curves.

Run:  python examples/target_detection.py
"""

import numpy as np

from repro.core.amc_gpu import gpu_morphological_stage
from repro.core.detection import detection_curve, rx_detector
from repro.hsi import generate_indian_pines_like
from repro.hsi.targets import implant_targets


def main() -> None:
    rng = np.random.default_rng(99)
    scene = generate_indian_pines_like(128, 128, seed=31)
    planted = implant_targets(
        scene.cube.as_bip().astype(np.float64),
        scene.library.get("roof_metal"),
        count=12, abundance=0.5, rng=rng)
    print(f"Planted {planted.count} sub-pixel targets "
          f"({planted.abundance:.0%} abundance) in a 128x128 scene.")

    out = gpu_morphological_stage(planted.cube)
    print(f"GPU morphological stage: "
          f"{out.counters['kernel_launches']:.0f} launches, "
          f"{out.modeled_time_s * 1e3:.1f} ms modeled device time")

    mask = planted.mask(tolerance=1)  # the 3x3 SE smears the response
    mei_curve = detection_curve(out.mei.astype(np.float64), mask,
                                max_alarms=1500)
    rx_curve = detection_curve(rx_detector(planted.cube), mask,
                               max_alarms=1500)

    print(f"\n{'alarms':>8} {'MEI recall':>12} {'RX recall':>12}")
    for budget in (100, 250, 500, 1000, 1500):
        print(f"{budget:>8} {mei_curve.recall_at(budget):>12.1%} "
              f"{rx_curve.recall_at(budget):>12.1%}")
    print(f"\narea under curve: MEI {mei_curve.auc:.3f}, "
          f"RX {rx_curve.auc:.3f}")
    print("The local MEI beats the global RX here: the target material "
          "also occurs legitimately elsewhere in the scene (building "
          "roofs), so it is not a *global* outlier — but a roof pixel in "
          "the middle of a cornfield is locally eccentric, which is "
          "exactly what the MEI measures.  And AMC computes the MEI "
          "anyway: detection comes free with classification.")


if __name__ == "__main__":
    main()
