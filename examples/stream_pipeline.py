#!/usr/bin/env python
"""Building a custom pipeline with the stream programming framework.

The paper's Section 2 describes GPUs through the stream model: data as
streams, computation as order-independent kernels, applications as
kernel chains.  This example builds a *vegetation-index + threshold*
pipeline from scratch with :mod:`repro.stream` — no AMC involved — and
runs the identical stage graph on both executors (CPU interpreter and
virtual GPU), demonstrating that the framework, not the backend, defines
the semantics.

Pipeline (per pixel):
  ndvi   = (nir - red) / (nir + red + eps)
  mask   = ndvi > threshold            (vegetation map)
  masked = ndvi * mask

Run:  python examples/stream_pipeline.py
"""

import numpy as np

from repro.gpu import shaderir as ir
from repro.hsi import generate_indian_pines_like
from repro.stream import CpuExecutor, GpuExecutor, StageGraph, Step, Stream
from repro.stream.kernel import StreamKernel


def build_graph(threshold: float) -> StageGraph:
    """The NDVI stage graph; all kernels are order-independent."""
    eps = ir.vec4(1e-6)
    ndvi = StreamKernel.from_expression(
        "ndvi",
        ir.div(ir.sub(ir.TexFetch("nir"), ir.TexFetch("red")),
               ir.add(ir.add(ir.TexFetch("nir"), ir.TexFetch("red")), eps)),
        inputs=("nir", "red"))
    veg_mask = StreamKernel.from_expression(
        "veg_mask",
        ir.cmp_gt(ir.TexFetch("ndvi"), ir.Uniform("threshold")),
        inputs=("ndvi",), uniforms=("threshold",))
    apply_mask = StreamKernel.from_expression(
        "apply_mask",
        ir.mul(ir.TexFetch("ndvi"), ir.TexFetch("mask")),
        inputs=("ndvi", "mask"))
    return StageGraph(
        "ndvi-threshold",
        inputs=("nir", "red"),
        steps=(
            Step(ndvi, {"nir": "nir", "red": "red"}, "ndvi"),
            Step(veg_mask, {"ndvi": "ndvi"}, "mask",
                 uniforms={"threshold": np.float32(threshold)}),
            Step(apply_mask, {"ndvi": "ndvi", "mask": "mask"}, "masked"),
        ),
        outputs=("ndvi", "mask", "masked"))


def main() -> None:
    scene = generate_indian_pines_like(64, 64, seed=3)
    cube = scene.cube
    _, red = cube.band_at_wavelength(670.0)
    _, nir = cube.band_at_wavelength(800.0)
    inputs = {
        "red": Stream.from_scalar("red", red),
        "nir": Stream.from_scalar("nir", nir),
    }
    graph = build_graph(threshold=0.45)
    print(f"Stage graph {graph.name!r}: {graph.step_count()} kernels, "
          f"streams {graph.stream_names}")

    cpu_out = CpuExecutor().run(graph, inputs)
    gpu_exec = GpuExecutor()
    gpu_out = gpu_exec.run(graph, {k: s.copy() for k, s in inputs.items()})

    agree = all(np.array_equal(cpu_out[k].data, gpu_out[k].data)
                for k in ("ndvi", "mask", "masked"))
    print(f"CPU and GPU executors agree bit-for-bit: {agree}")

    veg_fraction = float(gpu_out["mask"].scalar().mean())
    print(f"Vegetation fraction at NDVI > 0.45: {veg_fraction:.1%}")
    counters = gpu_exec.device.counters
    print(f"GPU accounting: {counters.kernel_launch_count} launches, "
          f"{counters.total_time_s * 1e6:.1f} us modeled device time")


if __name__ == "__main__":
    main()
