#!/usr/bin/env python
"""Target detection through the workload registry: SAM versus RX.

The same Pipeline machinery that runs AMC classification runs any
registered workload — this demo drives two of the detection workloads
over one scene with planted sub-pixel targets:

* ``sam`` — a *matched* filter: it knows the target spectrum and scores
  each pixel by spectral-angle similarity to it.
* ``rx`` — an *anomaly* detector: no target knowledge at all, it scores
  each pixel by Mahalanobis distance from the scene background.

Both go through ``get_workload(name).run(...)`` with chunk-parallel
execution, and both score maps are rendered as ASCII so the planted
targets are visible right in the terminal.

Run:  python examples/detection_demo.py
"""

import numpy as np

from repro.hsi import generate_indian_pines_like
from repro.hsi.targets import implant_targets
from repro.viz import render_ascii
from repro.workloads import get_workload


def main() -> None:
    rng = np.random.default_rng(7)
    scene = generate_indian_pines_like(96, 96, seed=23)
    spectrum = scene.library.get("roof_metal")
    planted = implant_targets(scene.cube.as_bip().astype(np.float64),
                              spectrum, count=9, abundance=0.8, rng=rng)
    # tolerance=0: SAM and RX score per pixel, nothing smears onto
    # neighbours (unlike the windowed MEI in target_detection.py)
    mask = planted.mask(tolerance=0)
    print(f"Planted {planted.count} sub-pixel targets "
          f"({planted.abundance:.0%} abundance) in a 96x96 scene.\n")

    results = {}
    for name in ("sam", "rx"):
        workload = get_workload(name)
        params = {"n_workers": 2, "max_alarms": 1000}
        if workload.requires_target:
            params["target"] = tuple(float(v) for v in spectrum)
        results[name] = workload.run(planted.cube, params,
                                     ground_truth=mask)

    for name, result in results.items():
        known = ("matched filter, target spectrum known"
                 if get_workload(name).requires_target
                 else "anomaly detector, no target knowledge")
        print(f"--- {name.upper()} score map ({known}) ---")
        print(render_ascii(result.scores, max_width=48, max_height=24))
        print(f"{name.upper()} area under detection curve: "
              f"{result.auc:.3f}\n")

    print(f"{'alarms':>8} {'SAM recall':>12} {'RX recall':>12}")
    for budget in (50, 150, 400, 1000):
        print(f"{budget:>8} "
              f"{results['sam'].curve.recall_at(budget):>12.1%} "
              f"{results['rx'].curve.recall_at(budget):>12.1%}")
    print("\nBoth detectors nail the planted pixels — the matched "
          "filter because it knows the target spectrum, RX because a "
          "metal roof in a cornfield is a strong global outlier.  And "
          "both ran through the exact same Pipeline, profiling and "
          "retry machinery as AMC classification — detection is just "
          "another registered workload.")


if __name__ == "__main__":
    main()
