#!/usr/bin/env python
"""The Figure-5 / Table-3 experiment: scene imagery and per-class accuracy.

Regenerates the paper's qualitative artefacts on the synthetic
Indian-Pines-like scene:

* Fig. 5 (a): the spectral band nearest 587 nm, written as PGM;
* Fig. 5 (b): the dense ground-truth map (30+ classes), written as a
  colour PPM;
* Table 3: per-class and overall classification accuracy of AMC,
  printed side by side with the values the paper reports;
* additionally the AMC classification map and MEI image.

Outputs land in ``examples/output/``.

Run:  python examples/indian_pines.py [--size 160]
"""

import argparse
import os

import numpy as np

from repro.core import AMCConfig, run_amc
from repro.hsi import INDIAN_PINES_CLASSES, generate_indian_pines_like
from repro.viz import write_class_map_ppm, write_pgm


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=160,
                        help="scene edge length in pixels (default 160)")
    parser.add_argument("--seed", type=int, default=2006)
    args = parser.parse_args()

    out_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "output")
    os.makedirs(out_dir, exist_ok=True)

    print(f"Generating a {args.size}x{args.size} Indian-Pines-like scene...")
    scene = generate_indian_pines_like(args.size, args.size, seed=args.seed)

    index, band = scene.cube.band_at_wavelength(587.0)
    band_path = write_pgm(band, os.path.join(out_dir, "band_587nm.pgm"))
    print(f"  Fig 5(a): band {index} "
          f"({scene.bands.centers_nm[index]:.0f} nm) -> {band_path}")

    gt_path = write_class_map_ppm(
        scene.ground_truth, os.path.join(out_dir, "ground_truth.ppm"),
        n_classes=scene.n_classes)
    print(f"  Fig 5(b): ground truth ({scene.n_classes} classes) -> {gt_path}")

    print("\nRunning AMC (3x3 SE, c=45 endmembers)...")
    result = run_amc(scene.cube, AMCConfig(n_classes=45),
                     ground_truth=scene.ground_truth,
                     class_names=scene.class_names)

    mei_path = write_pgm(result.mei, os.path.join(out_dir, "mei.pgm"))
    cls_path = write_class_map_ppm(
        result.labels, os.path.join(out_dir, "classification.ppm"),
        n_classes=scene.n_classes)
    print(f"  MEI image -> {mei_path}")
    print(f"  classification map -> {cls_path}")

    paper = {c.name: c.paper_accuracy for c in INDIAN_PINES_CLASSES}
    width = max(len(n) for n in scene.class_names) + 2
    print(f"\n{'Class':<{width}}{'paper %':>10}{'measured %':>12}")
    print("-" * (width + 22))
    for name, acc in result.report.rows():
        measured = "   --" if np.isnan(acc) else f"{acc:10.2f}"
        print(f"{name:<{width}}{paper[name]:>10.2f}  {measured}")
    print("-" * (width + 22))
    print(f"{'Overall:':<{width}}{72.35:>10.2f}  "
          f"{result.report.overall_accuracy:10.2f}")
    print(f"\nkappa = {result.report.kappa:.3f}")


if __name__ == "__main__":
    main()
