#!/usr/bin/env python
"""Advanced pipeline: the extensions working together.

Chains the library's extension features into the workflow a practitioner
would actually run on a new scene:

1. estimate the number of spectral sources with the HFC **virtual
   dimensionality** (the principled way to choose AMC's ``c`` input);
2. inspect the noise structure with an **MNF** transform;
3. extract endmember candidates with iterative **AMEE** (3 passes of a
   3x3 SE probe a ~7x7 reach at a fraction of the cost);
4. unmix and classify **on the GPU** with the device-side extension
   stages (the part the paper left on the CPU);
5. export the pipeline's fragment programs as **Cg source**, the
   language the paper hand-wrote its kernels in.

Run:  python examples/advanced_pipeline.py
"""

import os

import numpy as np

from repro.core import select_endmembers
from repro.core.endmembers import dilation_candidates
from repro.core.mei import mei_reference
from repro.core.morphology import amee
from repro.core.unmix_gpu import gpu_unmix_classify
from repro.gpu.cg import emit_pipeline_kernels
from repro.hsi import generate_indian_pines_like
from repro.spectral import mnf, virtual_dimensionality


def main() -> None:
    scene = generate_indian_pines_like(96, 96, band_count=128, seed=5)
    cube = scene.cube.as_bip().astype(np.float64)
    print(f"Scene: {scene.cube}")

    # 1. how many sources does the scene contain?
    vd = virtual_dimensionality(cube)
    print(f"\n[1] HFC virtual dimensionality: {vd} sources "
          f"(scene was built from {len(scene.library)} materials over "
          f"{scene.n_classes} classes)")

    # 2. MNF: where does the signal stop and the noise begin?
    proj = mnf(cube, n_components=10)
    snrs = ", ".join(f"{s:.0f}" for s in proj.scores[:6])
    print(f"[2] MNF leading SNR-like scores: {snrs}, ...")

    # 3. iterative AMEE for endmember candidates.
    result = amee(cube, radius=1, iterations=3)
    morph1 = mei_reference(cube)
    gain = result.mei.mean() / morph1.mei.mean()
    print(f"[3] AMEE x3: mean MEI response {gain:.2f}x a single pass "
          f"(wider effective probe)")
    candidates = dilation_candidates(result.mei,
                                     mei_reference(cube).dilation_index, 1)
    count = max(vd, 8)
    endmembers = select_endmembers(cube, result.mei, count,
                                   candidates=candidates)
    print(f"    selected {len(endmembers)} endmembers at "
          f"{[(int(y), int(x)) for y, x in endmembers.positions[:4]]}...")

    # 4. unmix + classify on the device.
    out = gpu_unmix_classify(cube, endmembers.spectra)
    share = np.bincount(out.winner_index.ravel(),
                        minlength=count) / out.winner_index.size
    print(f"[4] GPU unmixing: {out.counters['kernel_launches']:.0f} "
          f"launches, {out.modeled_time_s * 1e3:.2f} ms modeled; "
          f"largest class covers {share.max():.1%} of pixels")

    # 5. export the stream pipeline as Cg.
    sources = emit_pipeline_kernels(radius=1, fuse_groups=6, bands=128)
    out_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "output", "cg")
    os.makedirs(out_dir, exist_ok=True)
    for name, src in sources.items():
        with open(os.path.join(out_dir, f"{name}.cg"), "w") as fh:
            fh.write(src)
    print(f"[5] exported {len(sources)} Cg fragment programs to "
          f"{out_dir}/ (e.g. mei_final.cg)")


if __name__ == "__main__":
    main()
