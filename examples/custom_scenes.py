#!/usr/bin/env python
"""Custom scenes and custom kernels: using the library beyond the paper.

Two things a downstream user does on day one:

1. **Bring their own scene.**  The generator is table-driven; the
   ``repro.hsi.scenes`` presets show two regimes — an *urban* scene of
   pure, well-separated classes (easy for AMC) and a *coastal* scene
   dominated by dark, low-SNR water (hard numerics).  The same AMC
   configuration runs on both; the accuracy gap is the point.
2. **Bring their own kernels.**  The MEI map is post-processed with the
   stream framework's stock kernels (Gaussian blur, then Sobel edges),
   executed chunk-by-chunk through the generic chunked executor with the
   halo derived automatically from the shaders.

Run:  python examples/custom_scenes.py
"""

import numpy as np

from repro.core import AMCConfig, run_amc
from repro.hsi import generate_coastal_scene, generate_urban_scene
from repro.stream import CpuExecutor, StageGraph, Step, Stream
from repro.stream.chunked import graph_halo, run_chunked
from repro.stream.kernel import gaussian_blur, sobel_magnitude


def main() -> None:
    print("=== 1. Two scenes, one algorithm ===")
    results = {}
    for name, scene in (("urban", generate_urban_scene(80, 80, seed=21)),
                        ("coastal", generate_coastal_scene(80, 80,
                                                           seed=22))):
        result = run_amc(scene.cube, AMCConfig(n_classes=12),
                         ground_truth=scene.ground_truth,
                         class_names=scene.class_names)
        results[name] = result
        print(f"  {name:8s} {scene.n_classes} classes, "
              f"overall accuracy {result.report.overall_accuracy:6.2f}%, "
              f"kappa {result.report.kappa:.3f}")
    print("  Both scenes use spectrally distinct materials, so AMC is "
          "near-perfect on either —\n  compare the ~77% of the 32-class "
          "Indian-Pines-like scene (bench_table3), whose\n  difficulty "
          "comes from near-duplicate crop variants, not from scene type.")

    print("\n=== 2. Custom post-processing with the stream framework ===")
    mei = results["urban"].mei
    graph = StageGraph(
        "mei-edges", inputs=("mei",),
        steps=(Step(gaussian_blur("smooth", radius=2), {"a": "mei"},
                    "smoothed"),
               Step(sobel_magnitude("edges"), {"a": "smoothed"},
                    "edges")),
        outputs=("smoothed", "edges"))
    print(f"  graph halo derived from the shaders: {graph_halo(graph)} "
          f"lines")
    inputs = {"mei": Stream.from_scalar("mei", mei)}
    whole = CpuExecutor().run(graph, inputs)
    chunked = run_chunked(graph, inputs, CpuExecutor(), max_ext_lines=24)
    identical = np.array_equal(whole["edges"].data, chunked["edges"].data)
    print(f"  chunked (24-line budget) == whole-image: {identical}")

    edges = whole["edges"].scalar()
    boundary_frac = (edges > np.percentile(edges, 90)).mean()
    print(f"  strongest 10% of MEI-edge response covers "
          f"{boundary_frac:.1%} of the scene (field boundaries)")


if __name__ == "__main__":
    main()
