#!/usr/bin/env python
"""Onboard GPU processing: chunked execution under a VRAM budget.

The paper's motivating scenario is onboard remote-sensing processing
with low-weight commodity hardware, where the scene does not fit GPU
memory and must be streamed through in chunks (Fig. 3).  This example
runs the stream AMC pipeline on both of the paper's boards with a
deliberately small VRAM budget to force chunking, and reports the
modeled device time, its kernel/transfer split, and the per-kernel
profile — the numbers an engineer sizing an onboard system would need.

Run:  python examples/onboard_gpu.py
"""

import numpy as np

from repro.core.amc_gpu import gpu_morphological_stage
from repro.gpu import GEFORCE_7800GTX, GEFORCE_FX5950U
from repro.hsi import generate_indian_pines_like


def main() -> None:
    scene = generate_indian_pines_like(96, 96, band_count=128, seed=11)
    cube = scene.cube.as_bip()
    print(f"Scene: {scene.cube}")

    for spec in (GEFORCE_FX5950U, GEFORCE_7800GTX):
        # Shrink VRAM so the 96-line scene needs several chunks, the way
        # the full 547 MB scene does on a real 256 MB board.
        small = spec.with_(vram_bytes=8 * 1024 * 1024)
        print(f"\n=== {spec.name} (VRAM limited to 8 MiB) ===")
        out = gpu_morphological_stage(cube, spec=small)
        print(f"  chunks:            {out.chunk_count}")
        print(f"  kernel launches:   {out.counters['kernel_launches']:.0f}")
        print(f"  fragments shaded:  {out.counters['fragments_shaded']:.3g}")
        print(f"  texture fetches:   {out.counters['texture_fetches']:.3g}")
        print(f"  uploaded:          {out.counters['bytes_uploaded'] / 1e6:.1f} MB")
        print(f"  modeled time:      {out.modeled_time_s * 1e3:.2f} ms "
              f"(kernels {out.counters['kernel_time_s'] * 1e3:.2f} ms, "
              f"transfers {out.counters['transfer_time_s'] * 1e3:.2f} ms)")
        profile = sorted(out.time_by_kernel.items(), key=lambda kv: -kv[1])
        print("  top kernels by modeled time:")
        for name, seconds in profile[:5]:
            print(f"    {name:<18} {seconds * 1e3:8.2f} ms")

    # Chunked and unchunked execution must agree exactly.
    full = gpu_morphological_stage(cube, spec=GEFORCE_7800GTX)
    chunked = gpu_morphological_stage(
        cube, spec=GEFORCE_7800GTX.with_(vram_bytes=8 * 1024 * 1024))
    same = np.allclose(full.mei, chunked.mei, rtol=1e-5, atol=1e-7)
    print(f"\nchunked == unchunked MEI: {same} "
          f"({full.chunk_count} vs {chunked.chunk_count} chunks)")


if __name__ == "__main__":
    main()
