#!/usr/bin/env python
"""Dispatch lint — backend string dispatch must not re-fragment.

Thin wrapper over reprolint's AST-accurate ``backend-dispatch`` rule
(``tools/reprolint/rules/backend_dispatch.py``).  The original regex
scanner this file used to be could false-positive on ``backend ==``
text inside strings and docstrings; matching ``ast.Compare`` nodes
cannot.  The wrapper (and its ``scan()`` API) is kept so documented
invocations stay valid::

    python tools/check_dispatch.py
"""

from __future__ import annotations

import os
import sys

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(TOOLS_DIR)
if REPO_ROOT not in sys.path:
    sys.path.insert(0, REPO_ROOT)

from tools.reprolint import run  # noqa: E402  (path set up above)

RULE_ID = "backend-dispatch"


def _line_text(path: str, lineno: int) -> str:
    with open(path, encoding="utf-8") as fh:
        for number, line in enumerate(fh, start=1):
            if number == lineno:
                return line.strip()
    return ""


def scan(root: str = REPO_ROOT) -> list[str]:
    """All violations under ``root``'s ``src/repro`` tree, as
    ``path:line: text`` strings (empty when dispatch is centralized)."""
    result = run(paths=["src/repro"], root=root, rules=[RULE_ID])
    return [f"{f.path}:{f.line}: "
            f"{_line_text(os.path.join(root, f.path), f.line)}"
            for f in result.findings]


def main() -> int:
    problems = scan()
    for problem in problems:
        print(f"FAIL: backend string dispatch outside repro/backends/ — "
              f"{problem}")
    if problems:
        print("resolve backends through repro.backends.get_backend() and "
              "put capabilities on the backend object")
        return 1
    print("dispatch centralized: no backend string comparisons outside "
          "repro/backends/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
