#!/usr/bin/env python
"""Dispatch lint — backend string dispatch must not re-fragment.

Before the :mod:`repro.backends` registry, ``config.backend == "..."``
chains were duplicated across ``core/amc.py``, ``core/morphology.py``
and ``parallel/amc.py``; adding a backend meant editing every one of
them.  The registry made name resolution a single point, and this
checker keeps it that way: it fails if any ``backend == ...`` /
``backend != ...`` comparison (including ``config.backend``,
``args.backend``, ``self.backend``) appears in library code outside
``src/repro/backends/``.  Capability decisions belong on the backend
object (``supports_device_unmixing``, ``supports_trace``), not on its
name.

Run by ``tests/test_dispatch_lint.py`` so it gates CI; run directly for
a human-readable report::

    python tools/check_dispatch.py
"""

from __future__ import annotations

import os
import re
import sys

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(TOOLS_DIR)

#: Any equality/inequality comparison against a name ending in
#: ``backend`` — the dispatch idiom the registry replaced.
PATTERN = re.compile(r"\bbackend\s*(?:==|!=)")

#: Directory (relative to the scanned root) whose files may dispatch.
ALLOWED_DIR = os.path.join("src", "repro", "backends")


def scan_file(path: str) -> list[tuple[int, str]]:
    """(line number, line) pairs of dispatch comparisons in one file."""
    hits = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            code = line.split("#", 1)[0]
            if PATTERN.search(code):
                hits.append((lineno, line.rstrip()))
    return hits


def scan(root: str = REPO_ROOT) -> list[str]:
    """All violations under ``root``'s ``src/repro`` tree, as
    ``path:line: text`` strings (empty when dispatch is centralized)."""
    problems = []
    src = os.path.join(root, "src", "repro")
    allowed = os.path.join(root, ALLOWED_DIR)
    for dirpath, dirnames, filenames in os.walk(src):
        dirnames[:] = [d for d in dirnames
                       if not d.startswith((".", "_"))
                       and not d.endswith(".egg-info")]
        if os.path.commonpath([dirpath, allowed]) == allowed:
            continue
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            for lineno, line in scan_file(path):
                rel = os.path.relpath(path, root)
                problems.append(f"{rel}:{lineno}: {line.strip()}")
    return problems


def main() -> int:
    problems = scan()
    for problem in problems:
        print(f"FAIL: backend string dispatch outside repro/backends/ — "
              f"{problem}")
    if problems:
        print("resolve backends through repro.backends.get_backend() and "
              "put capabilities on the backend object")
        return 1
    print("dispatch centralized: no backend string comparisons outside "
          "repro/backends/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
