"""Repository tooling: lints, doc generators, and the reprolint suite.

This package marker exists so ``python -m tools.reprolint`` works from
the repository root.  The legacy single-file checkers
``check_excepts.py`` and ``check_dispatch.py`` are deprecated thin
wrappers — use ``python -m tools.reprolint --rules blanket-except`` /
``--rules backend-dispatch`` instead; ``check_docs.py`` remains
directly runnable as a script.
"""
