"""Repository tooling: lints, doc generators, and the reprolint suite.

This package marker exists so ``python -m tools.reprolint`` works from
the repository root; the legacy single-file checkers
(``check_excepts.py``, ``check_dispatch.py``, ``check_docs.py``) remain
directly runnable as scripts.
"""
