#!/usr/bin/env python
"""Docs consistency check — documentation cannot silently rot.

Three cross-checks, run by ``tests/test_docs.py`` so they gate CI:

1. **API index currency** — ``docs/api.md`` must equal what
   ``tools/gen_api_docs.py`` renders right now (same generator, same
   source tree).  A new module, a changed ``__all__`` or an edited
   docstring first line all show up here until the index is
   regenerated.
2. **Module coverage** — every public module under ``src/repro/`` must
   be mentioned by its dotted name in ``docs/api.md`` (guaranteed by
   the generator's discovery walk, but checked independently so a
   hand-edited index still fails).
3. **Architecture coverage** — every public *package* must appear in
   ``docs/architecture.md``'s layering description.

Run directly for a human-readable report::

    python tools/check_docs.py
"""

from __future__ import annotations

import os
import sys

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(TOOLS_DIR)

sys.path.insert(0, TOOLS_DIR)
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

import gen_api_docs  # noqa: E402  (path set up above)


def _read(relpath: str) -> str:
    with open(os.path.join(REPO_ROOT, relpath), encoding="utf-8") as fh:
        return fh.read()


def check_api_index_current() -> list[str]:
    """docs/api.md must match a fresh render of the generator."""
    current = _read(os.path.join("docs", "api.md"))
    fresh = gen_api_docs.render()
    if current != fresh:
        return ["docs/api.md is stale — run `python tools/gen_api_docs.py`"]
    return []


def check_modules_indexed() -> list[str]:
    """Every public module's dotted name must appear in docs/api.md."""
    api = _read(os.path.join("docs", "api.md"))
    return [f"module `{name}` is not mentioned in docs/api.md"
            for name in gen_api_docs.discover_modules()
            if name not in api]


def check_packages_in_architecture() -> list[str]:
    """Every public package must appear in docs/architecture.md."""
    architecture = _read(os.path.join("docs", "architecture.md"))
    return [f"package `{package}` is not mentioned in docs/architecture.md"
            for package, _ in gen_api_docs.PACKAGES
            if package != "repro" and package not in architecture]


def run_checks() -> list[str]:
    """All problems found, empty when the docs are consistent."""
    return (check_api_index_current()
            + check_modules_indexed()
            + check_packages_in_architecture())


def main() -> int:
    problems = run_checks()
    for problem in problems:
        print(f"FAIL: {problem}")
    if problems:
        return 1
    modules = len(gen_api_docs.discover_modules())
    print(f"docs consistent: {modules} modules indexed, "
          f"{len(gen_api_docs.PACKAGES)} packages in the architecture map")
    return 0


if __name__ == "__main__":
    sys.exit(main())
