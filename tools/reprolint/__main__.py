"""CLI: ``python -m tools.reprolint [paths...] [--json] [--rules ...]``.

Exit status 0 when no active findings remain (suppressed findings do
not fail the run — they are reported so the debt stays visible), 1 when
violations were found, 2 on usage errors (argparse's convention).
"""

from __future__ import annotations

import argparse
import sys

from .engine import REPO_ROOT, run
from .reporters import render_json, render_text
from .rules import all_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description="AST-based static analysis guarding the repo's "
                    "determinism, pickle-safety and dtype invariants")
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: the scan roots from "
             "[tool.reprolint] in pyproject.toml)")
    parser.add_argument(
        "--root", default=REPO_ROOT,
        help="repository root findings are reported relative to "
             "(default: this checkout)")
    parser.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable JSON report instead of text")
    parser.add_argument(
        "--rules", default=None, metavar="ID[,ID...]",
        help="comma-separated subset of rule ids to run (default: all)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}: {rule.description}")
        return 0
    rule_ids = (None if args.rules is None
                else [part.strip() for part in args.rules.split(",")
                      if part.strip()])
    try:
        result = run(paths=args.paths or None, root=args.root,
                     rules=rule_ids)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_json(result) if args.json else render_text(result))
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
