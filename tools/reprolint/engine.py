"""reprolint core: one parse, one walk, many rules.

The engine owns everything the individual rules should not have to
repeat: file discovery, parsing (cached per file), the tree walk
(memoized per tree, shared by every rule), path scoping, inline
suppressions, and result ordering.  A rule is a small object satisfying
the :class:`Check` protocol — it receives an already-parsed tree and
returns :class:`Finding` objects; it never opens files and never walks
the tree itself (it asks :func:`iter_nodes`, which walks each tree
exactly once no matter how many rules or node types are requested).

Path scoping happens *before* a rule runs:

``applies_to``
    Repo-relative posix prefixes the rule is confined to; empty means
    every scanned file.
``allowed_paths``
    Prefixes (directories or single files) exempt from the rule — the
    mechanism behind "blanket excepts may live in ``resilience/``".
    Extended per-rule by ``[tool.reprolint.allow]`` in ``pyproject.toml``
    (see :mod:`tools.reprolint.config`).

Line-level escapes use ``# reprolint: disable=<rule>[,<rule>...]`` on
the flagged line.  A suppression silences exactly the named rules; the
finding is still produced, marked ``suppressed=True``, and counted in
the JSON report so silenced debt stays visible.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, replace
from typing import Iterable, Protocol, Sequence

TOOLS_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
REPO_ROOT = os.path.dirname(TOOLS_DIR)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is root-relative with ``/`` separators regardless of
    platform, so findings are stable keys in reports and tests.
    """

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule_id)


class Check(Protocol):
    """What the engine requires of a rule."""

    rule_id: str
    description: str
    applies_to: tuple[str, ...]
    allowed_paths: tuple[str, ...]

    def visit(self, tree: ast.Module, source: str,
              path: str) -> list[Finding]:
        """Findings for one already-parsed file (``path`` is relative)."""
        ...


class Rule:
    """Convenience base for rules: scoping attributes + a finding factory."""

    rule_id: str = ""
    description: str = ""
    #: ``"file"`` rules get each file via :meth:`visit`; ``"program"``
    #: rules get the whole :class:`~tools.reprolint.program.ProgramIndex`
    #: once via :meth:`ProgramRule.visit_program`.
    tier: str = "file"
    applies_to: tuple[str, ...] = ()
    allowed_paths: tuple[str, ...] = ()

    def finding(self, path: str, node: ast.AST, message: str) -> Finding:
        return Finding(self.rule_id, path, getattr(node, "lineno", 1),
                       getattr(node, "col_offset", 0), message)


class ProgramRule(Rule):
    """Base for whole-program rules.

    A program rule runs once per lint run against the project index
    (built over ``<root>/src`` regardless of which paths were passed —
    cross-module resolution needs the whole program).  Its findings are
    then filtered exactly like per-file findings: restricted to the
    requested paths, exempted by ``allowed_paths`` / pyproject
    ``allow`` prefixes, and suppressible with an inline
    ``# reprolint: disable=<rule>`` comment *on the reported line* —
    a cross-module finding attributes to one concrete file/line and
    that is where the suppression lives.

    Per-rule options come from ``[tool.reprolint.rule.<id>]`` in
    pyproject (see :mod:`tools.reprolint.config`).
    """

    tier = "program"

    def visit(self, tree: ast.Module, source: str,
              path: str) -> list[Finding]:  # pragma: no cover - not called
        return []

    def visit_program(self, index, options: dict) -> list[Finding]:
        """Findings across the whole program.  ``index`` is a
        :class:`~tools.reprolint.program.ProgramIndex`; ``options`` the
        rule's pyproject table (may be empty)."""
        raise NotImplementedError


# --------------------------------------------------------------------------
# Shared parse + walk


class AstCache:
    """Parse each file at most once per run; every rule shares the tree."""

    def __init__(self) -> None:
        self._entries: dict[str, tuple[ast.Module, str]] = {}

    def get(self, abspath: str) -> tuple[ast.Module, str]:
        entry = self._entries.get(abspath)
        if entry is None:
            with open(abspath, encoding="utf-8") as fh:
                source = fh.read()
            entry = (ast.parse(source, filename=abspath), source)
            self._entries[abspath] = entry
        return entry


#: id(tree) -> (tree, all nodes in walk order, {node type: nodes}).
#: Keeping the tree in the value pins it alive, so an id can never be
#: recycled while its entry exists; ``run`` clears the table when done.
_WALK_CACHE: dict[int, tuple[ast.AST, list[ast.AST],
                             dict[type, list[ast.AST]]]] = {}


def iter_nodes(tree: ast.AST, *types: type) -> list[ast.AST]:
    """Nodes of the given types, from a single memoized walk of ``tree``.

    The first rule to ask triggers one ``ast.walk``; every later request
    for the same tree — any rule, any node type — is a dict lookup.
    With no ``types`` the full node list is returned.
    """
    entry = _WALK_CACHE.get(id(tree))
    if entry is None or entry[0] is not tree:
        nodes = list(ast.walk(tree))
        by_type: dict[type, list[ast.AST]] = {}
        for node in nodes:
            by_type.setdefault(type(node), []).append(node)
        entry = (tree, nodes, by_type)
        _WALK_CACHE[id(tree)] = entry
    if not types:
        return list(entry[1])
    if len(types) == 1:
        return list(entry[2].get(types[0], ()))
    out: list[ast.AST] = []
    for t in types:
        out.extend(entry[2].get(t, ()))
    out.sort(key=lambda n: (getattr(n, "lineno", 0),
                            getattr(n, "col_offset", 0)))
    return out


# --------------------------------------------------------------------------
# Inline suppressions

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable=([A-Za-z0-9_-]+(?:\s*,\s*[A-Za-z0-9_-]+)*)")


def suppressions(source: str) -> dict[int, frozenset[str]]:
    """Line number -> rule ids disabled on that physical line."""
    out: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            out[lineno] = frozenset(
                part.strip() for part in match.group(1).split(","))
    return out


# --------------------------------------------------------------------------
# File discovery and scoping

#: Directory names never descended into (caches, VCS, egg metadata).
def _keep_dir(name: str) -> bool:
    return (not name.startswith((".", "_"))
            and not name.endswith(".egg-info"))


def collect_files(paths: Sequence[str], root: str) -> list[str]:
    """All ``.py`` files under ``paths`` (files or directories, resolved
    against ``root``), sorted within each path for determinism.  Paths
    that do not exist are skipped — scan roots are a superset of what a
    given checkout may contain."""
    files: list[str] = []
    seen: set[str] = set()
    for path in paths:
        abspath = path if os.path.isabs(path) else os.path.join(root, path)
        if os.path.isfile(abspath):
            if abspath.endswith(".py") and abspath not in seen:
                seen.add(abspath)
                files.append(abspath)
            continue
        for dirpath, dirnames, filenames in os.walk(abspath):
            dirnames[:] = sorted(d for d in dirnames if _keep_dir(d))
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                full = os.path.join(dirpath, filename)
                if full not in seen:
                    seen.add(full)
                    files.append(full)
    return files


def path_matches(relpath: str, prefixes: Iterable[str]) -> bool:
    """True when ``relpath`` equals a prefix or lies under a prefix
    directory.  Prefixes use ``/`` separators and may name single files."""
    for prefix in prefixes:
        prefix = prefix.rstrip("/")
        if relpath == prefix or relpath.startswith(prefix + "/"):
            return True
    return False


# --------------------------------------------------------------------------
# Runner


@dataclass
class RunResult:
    """Outcome of one lint run.

    ``findings`` are the active (build-failing) violations;
    ``suppressed`` the ones silenced by inline ``disable`` comments —
    reported separately so suppression debt is countable.
    """

    findings: list[Finding]
    suppressed: list[Finding]
    files_scanned: int

    @property
    def ok(self) -> bool:
        return not self.findings


def run(paths: Sequence[str] | None = None, root: str = REPO_ROOT,
        rules: Sequence[str] | None = None, config=None) -> RunResult:
    """Lint ``paths`` (default: the configured scan roots) under ``root``.

    ``rules`` selects a subset by id; unknown ids raise ``ValueError``
    so a typoed CI invocation fails loudly instead of passing vacuously.
    """
    from .config import load_config
    from .rules import all_rules, resolve_rules

    cfg = config if config is not None else load_config(root)
    selected = all_rules() if rules is None else resolve_rules(rules)
    scan_paths = list(paths) if paths is not None else list(cfg.roots)
    file_rules = [r for r in selected
                  if getattr(r, "tier", "file") == "file"]
    program_rules = [r for r in selected
                     if getattr(r, "tier", "file") == "program"]

    cache = AstCache()
    active: list[Finding] = []
    suppressed: list[Finding] = []
    files = collect_files(scan_paths, root)
    try:
        for abspath in files:
            rel = os.path.relpath(abspath, root).replace(os.sep, "/")
            applicable = [
                rule for rule in file_rules
                if (not rule.applies_to
                    or path_matches(rel, rule.applies_to))
                and not path_matches(
                    rel, tuple(rule.allowed_paths)
                    + tuple(cfg.allow.get(rule.rule_id, ())))
            ]
            if not applicable:
                continue
            try:
                tree, source = cache.get(abspath)
            except (SyntaxError, ValueError, UnicodeDecodeError) as exc:
                active.append(Finding(
                    "syntax-error", rel,
                    getattr(exc, "lineno", None) or 1, 0,
                    f"could not parse file: {exc}"))
                continue
            disabled = suppressions(source)
            for rule in applicable:
                for finding in rule.visit(tree, source, rel):
                    if rule.rule_id in disabled.get(finding.line, ()):
                        suppressed.append(replace(finding, suppressed=True))
                    else:
                        active.append(finding)
        if program_rules:
            _run_program_tier(program_rules, root, scan_paths, cfg,
                              active, suppressed)
    finally:
        _WALK_CACHE.clear()
    active.sort(key=Finding.sort_key)
    suppressed.sort(key=Finding.sort_key)
    return RunResult(active, suppressed, len(files))


def _run_program_tier(program_rules, root: str, scan_paths: Sequence[str],
                      cfg, active: list[Finding],
                      suppressed: list[Finding]) -> None:
    """Run the whole-program rules and merge their findings.

    The index always covers ``<root>/src`` (cross-module resolution
    needs the whole program); findings are then filtered to the paths
    the caller actually asked about, so ``reprolint tools/`` does not
    fail on ``src/`` debt.  Suppressions attribute to the *reported*
    file/line — the one place a cross-module finding is anchored.
    """
    from .program import get_index

    index = get_index(root)
    rel_scan = []
    for path in scan_paths:
        abspath = path if os.path.isabs(path) else os.path.join(root, path)
        rel_scan.append(
            os.path.relpath(abspath, root).replace(os.sep, "/"))
    suppress_cache: dict[str, dict[int, frozenset[str]]] = {}
    for rule in program_rules:
        options = dict(cfg.options.get(rule.rule_id, {}))
        exempt = tuple(rule.allowed_paths) + tuple(
            cfg.allow.get(rule.rule_id, ()))
        for finding in rule.visit_program(index, options):
            if not path_matches(finding.path, rel_scan):
                continue
            if path_matches(finding.path, exempt):
                continue
            disabled = suppress_cache.get(finding.path)
            if disabled is None:
                info = index.by_path.get(finding.path)
                source = info.source if info is not None else ""
                disabled = suppressions(source)
                suppress_cache[finding.path] = disabled
            if rule.rule_id in disabled.get(finding.line, ()):
                suppressed.append(replace(finding, suppressed=True))
            else:
                active.append(finding)
