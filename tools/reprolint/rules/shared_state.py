"""async-thread-shared-state: the loop/executor boundary needs locks.

PR 8 made the serving layer stateful across a real concurrency
boundary: ``AMCServer`` methods run on the asyncio event loop, but the
job executor (``loop.run_in_executor``) calls into the same objects
from worker threads.  The repo's discipline — documented in
``docs/serving.md`` — is that any attribute mutated on *both* sides
must be guarded by a lock (the ``Heartbeat._last`` pattern) or kept
strictly on one side.  Nothing enforced that; this rule does.

Per class in the scoped modules (``modules`` option, default
``repro.serving``), the rule:

1. finds **thread-side roots** — methods passed by reference into a
   dispatch call (``run_in_executor`` / ``submit`` / ``Thread``);
2. finds **loop-side roots** — ``async def`` methods;
3. propagates both sides over the approximate call graph (``self.m()``
   edges plus name-matched attribute calls within the class);
4. collects every ``self.<attr>`` **mutation** — assignment,
   augmented assignment, deletion, subscript store, or a mutating
   method call (``.append``, ``.pop``, ...) — together with whether it
   happens inside a ``with <...lock...>:`` block
   (``__init__``/``__post_init__`` are construction, not sharing, and
   are exempt);
5. flags each unguarded mutation of an attribute that is mutated from
   both sides.

A justified single-side-by-design attribute can be waived with the
``waive`` option (``["ClassName.attr"]``) or an inline suppression on
the reported mutation line.
"""

from __future__ import annotations

import ast

from ..engine import Finding, ProgramRule
from ..program import ProgramIndex, dotted_name

#: Call names that move a function reference onto a thread.
DISPATCH_NAMES = frozenset({"run_in_executor", "submit", "Thread"})

#: Method names that mutate their receiver in place.
MUTATOR_NAMES = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "add", "discard", "update", "setdefault", "appendleft", "popleft",
    "sort", "reverse"})

#: Methods whose mutations are construction, not cross-side sharing.
CONSTRUCTOR_METHODS = frozenset({"__init__", "__post_init__", "__new__"})


def _is_lockish(expr: ast.AST) -> bool:
    """Heuristic: a with-context that names anything lock-like."""
    name = dotted_name(expr)
    if name is None and isinstance(expr, ast.Call):
        name = dotted_name(expr.func)
    return name is not None and "lock" in name.lower()


def _self_attr_of_target(node: ast.AST) -> str | None:
    """The attribute A for stores into ``self.A``, ``self.A[...]``,
    ``self.A.b...`` — the first attribute above ``self``."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        parent = node.value
        if (isinstance(node, ast.Attribute)
                and isinstance(parent, ast.Name) and parent.id == "self"):
            return node.attr
        node = parent
    return None


class _MutationScanner:
    """Collect (attr, node, guarded) mutations of ``self`` inside one
    method, tracking lock-guard depth lexically."""

    def __init__(self) -> None:
        self.mutations: list[tuple[str, ast.AST, bool]] = []

    def scan(self, fn: ast.AST) -> "_MutationScanner":
        for stmt in ast.iter_child_nodes(fn):
            self._visit(stmt, guarded=False)
        return self

    def _visit(self, node: ast.AST, guarded: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            return  # nested defs run when called, not here
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = guarded or any(_is_lockish(item.context_expr)
                                   for item in node.items)
            for child in ast.iter_child_nodes(node):
                self._visit(child, inner)
            return
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                attr = _self_attr_of_target(target)
                if attr is not None:
                    self.mutations.append((attr, node, guarded))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                attr = _self_attr_of_target(target)
                if attr is not None:
                    self.mutations.append((attr, node, guarded))
        elif (isinstance(node, ast.Call)
              and isinstance(node.func, ast.Attribute)
              and node.func.attr in MUTATOR_NAMES):
            attr = _self_attr_of_target(node.func.value)
            if attr is not None:
                self.mutations.append((attr, node, guarded))
        for child in ast.iter_child_nodes(node):
            self._visit(child, guarded)


class SharedStateRule(ProgramRule):
    rule_id = "async-thread-shared-state"
    description = ("a serving-class attribute is mutated from both the "
                   "event loop and executor threads without a lock")

    def visit_program(self, index: ProgramIndex,
                      options: dict) -> list[Finding]:
        scopes = tuple(options.get("modules", ("repro.serving",)))
        waived = frozenset(options.get("waive", ()))
        findings: list[Finding] = []
        for info in index.modules.values():
            if not any(info.name == s or info.name.startswith(s + ".")
                       for s in scopes):
                continue
            for cls in info.classes.values():
                findings.extend(
                    self._check_class(index, info, cls, waived))
        return findings

    def _check_class(self, index: ProgramIndex, info, cls: ast.ClassDef,
                     waived: frozenset) -> list[Finding]:
        methods = {stmt.name: stmt for stmt in cls.body
                   if isinstance(stmt, (ast.FunctionDef,
                                        ast.AsyncFunctionDef))}
        if not methods:
            return []
        thread_roots = self._thread_roots(index, info, methods)
        loop_roots = {name for name, fn in methods.items()
                      if isinstance(fn, ast.AsyncFunctionDef)}
        if not thread_roots or not loop_roots:
            return []
        thread_side = self._reachable(index, info, cls, methods,
                                      thread_roots)
        loop_side = self._reachable(index, info, cls, methods, loop_roots)

        by_attr: dict[str, list[tuple[str, ast.AST, bool]]] = {}
        for name, fn in methods.items():
            if name in CONSTRUCTOR_METHODS:
                continue
            sides = (("thread",) if name in thread_side else ()) + (
                ("loop",) if name in loop_side else ())
            if not sides:
                continue
            for attr, node, guarded in _MutationScanner().scan(fn).mutations:
                for side in sides:
                    by_attr.setdefault(attr, []).append(
                        (side, node, guarded))

        findings = []
        for attr, mutations in sorted(by_attr.items()):
            sides = {side for side, _, _ in mutations}
            if sides != {"thread", "loop"}:
                continue
            if f"{cls.name}.{attr}" in waived:
                continue
            seen_lines = set()
            for side, node, guarded in mutations:
                if guarded or node.lineno in seen_lines:
                    continue
                seen_lines.add(node.lineno)
                findings.append(self.finding(
                    info.path, node,
                    f"{cls.name}.{attr} is mutated from both the event "
                    "loop and executor threads; this mutation "
                    f"(reached from the {side} side) is not inside a "
                    "lock guard — wrap it in `with <lock>:` or waive "
                    f"{cls.name}.{attr} in [tool.reprolint.rule."
                    "async-thread-shared-state]"))
        return findings

    def _thread_roots(self, index: ProgramIndex, info,
                      methods: dict) -> set[str]:
        """Methods of this class passed by reference into a thread
        dispatch call anywhere in the defining module."""
        roots: set[str] = set()
        for call in index.walk_module(info, ast.Call):
            name = dotted_name(call.func)
            if name is None or name.split(".")[-1] not in DISPATCH_NAMES:
                continue
            candidates = list(call.args) + [kw.value
                                            for kw in call.keywords]
            for arg in candidates:
                if (isinstance(arg, ast.Attribute)
                        and arg.attr in methods):
                    roots.add(arg.attr)
        return roots

    def _reachable(self, index: ProgramIndex, info, cls: ast.ClassDef,
                   methods: dict, roots: set[str]) -> set[str]:
        """Closure of ``roots`` over same-class call-graph edges."""
        prefix = f"{info.name}:{cls.name}."
        reached = set(roots)
        stack = list(roots)
        graph = index.call_graph
        while stack:
            current = stack.pop()
            for edge in graph.get(prefix + current, ()):
                if edge.startswith("~"):
                    callee = edge[1:]
                elif edge.startswith(prefix):
                    callee = edge[len(prefix):]
                else:
                    continue
                if ("." not in callee and callee in methods
                        and callee not in reached):
                    reached.add(callee)
                    stack.append(callee)
        return reached
