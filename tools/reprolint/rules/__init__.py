"""Rule registry: every reprolint check, in stable report order.

Adding a rule is three steps (see ``docs/static_analysis.md``): write a
module here with a :class:`~tools.reprolint.engine.Rule` subclass, add
an instance to :data:`ALL_RULES`, and give it bad/clean fixtures under
``tests/reprolint/fixtures/``.
"""

from __future__ import annotations

from typing import Sequence

from .async_blocking import AsyncBlockingRule
from .backend_dispatch import BackendDispatchRule
from .blanket_except import BlanketExceptRule
from .cache_key import CacheKeySoundnessRule
from .dtype_discipline import DtypeDisciplineRule
from .durable_write import DurableWriteRule
from .fault_sites import FaultSiteRegistryRule
from .mutable_defaults import MutableDefaultsRule
from .pickle_safe_errors import PickleSafeErrorsRule
from .raise_contract import RaiseContractRule
from .shared_state import SharedStateRule
from .unseeded_rng import UnseededRngRule
from .wallclock import WallclockRule
from .workload_dispatch import WorkloadDispatchRule

ALL_RULES = (
    BlanketExceptRule(),
    BackendDispatchRule(),
    WorkloadDispatchRule(),
    PickleSafeErrorsRule(),
    UnseededRngRule(),
    WallclockRule(),
    DtypeDisciplineRule(),
    MutableDefaultsRule(),
    AsyncBlockingRule(),
    DurableWriteRule(),
    # whole-program tier (tools/reprolint/program.py)
    CacheKeySoundnessRule(),
    FaultSiteRegistryRule(),
    SharedStateRule(),
    RaiseContractRule(),
)

_BY_ID = {rule.rule_id: rule for rule in ALL_RULES}
assert len(_BY_ID) == len(ALL_RULES), "duplicate rule_id in ALL_RULES"


def all_rules():
    """Every registered rule, in registry order."""
    return list(ALL_RULES)


def resolve_rules(rule_ids: Sequence[str]):
    """Rules for the given ids; unknown ids fail loudly — a typoed CI
    invocation must not pass vacuously."""
    unknown = [rule_id for rule_id in rule_ids if rule_id not in _BY_ID]
    if unknown:
        raise ValueError(
            f"unknown rule id(s) {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(_BY_ID))}")
    return [_BY_ID[rule_id] for rule_id in rule_ids]
