"""raise-contract: everything raised under ``src/repro`` is a ReproError.

The library's public promise — "catch :class:`repro.errors.ReproError`
and you have caught everything this package raises" — plus the
pool-crossing constraint that worker exceptions must survive pickling
are conventions a per-file rule cannot check: the raise lives in one
module, the class in another, its bases in a third.

Interprocedurally, this rule checks every ``raise`` under the indexed
program:

1. the raised expression resolves to a class that (cross-module)
   derives from :class:`ReproError` (``base`` option, default
   ``repro.errors.ReproError``).  Builtins are findings unless
   allowlisted (``allow-builtins`` option; default permits the
   control-flow builtins such as ``NotImplementedError`` and
   ``StopIteration``).  ``raise name`` of a plain bound variable (the
   re-raise idiom) and dynamic constructs are skipped — they are
   re-surfacing an error, not originating one;
2. the class is reachable via the errors module itself (defined or
   re-exported there), so callers have one import point;
3. pickle-safety holds *interprocedurally*: a ReproError subclass
   defined outside the errors module (lineage the per-file
   ``pickle-safe-errors`` rule cannot see) keeps ``__init__`` state
   only if it forwards to ``super().__init__`` or ships a
   ``__reduce__``.
"""

from __future__ import annotations

import ast

from ..engine import Finding, ProgramRule
from ..program import BUILTIN_EXCEPTIONS, ProgramIndex, dotted_name
from .pickle_safe_errors import (_forwarded_names, _init_params)

DEFAULT_BASE = "repro.errors.ReproError"

#: Builtins that are control flow or contract markers, not error
#: reporting — always acceptable to raise.
DEFAULT_ALLOWED_BUILTINS = (
    "NotImplementedError", "KeyboardInterrupt", "SystemExit",
    "StopIteration", "StopAsyncIteration")


class RaiseContractRule(ProgramRule):
    rule_id = "raise-contract"
    description = ("a raise under src/repro does not resolve to a "
                   "pickle-safe ReproError subclass exported via "
                   "repro.errors")

    def visit_program(self, index: ProgramIndex,
                      options: dict) -> list[Finding]:
        base = str(options.get("base", DEFAULT_BASE))
        errors_mod = base.rpartition(".")[0]
        allowed = frozenset(options.get("allow-builtins",
                                        DEFAULT_ALLOWED_BUILTINS))
        findings: list[Finding] = []
        for info in index.modules.values():
            for node in index.walk_module(info, ast.Raise):
                findings.extend(self._check_raise(
                    index, info, node, base, errors_mod, allowed))
        for info in index.modules.values():
            if info.name == errors_mod:
                continue  # same-module lineage: pickle-safe-errors' job
            for cls in info.classes.values():
                if index.derives_from(info.name, cls, base):
                    findings.extend(
                        self._check_pickle_safety(info, cls))
        return findings

    def _check_raise(self, index: ProgramIndex, info, node: ast.Raise,
                     base: str, errors_mod: str,
                     allowed: frozenset) -> list[Finding]:
        exc = node.exc
        if exc is None:
            return []  # bare re-raise
        target = exc.func if isinstance(exc, ast.Call) else exc
        name = dotted_name(target)
        if name is None:
            return []  # dynamic (raise type(e)(...)): out of scope
        resolved = index.resolve_symbol(info.name, name)
        if resolved is None:
            if name in BUILTIN_EXCEPTIONS:
                if name in allowed:
                    return []
                return [self.finding(
                    info.path, node,
                    f"raises builtin {name} — everything raised under "
                    "the library must derive from ReproError so "
                    f"`except {base.rsplit('.', 1)[-1]}` catches it "
                    "(see repro.errors for dual-inheriting classes "
                    "like ValidationError)")]
            return []  # bound local (re-raise idiom) or external class
        mod, sym = resolved
        cls = index.modules[mod].classes.get(sym)
        if cls is None:
            return []  # a function or value: factory/re-raise, skip
        if resolved != tuple(base.rsplit(".", 1)) and \
                not index.derives_from(mod, cls, base):
            return [self.finding(
                info.path, node,
                f"raises {sym} ({index.modules[mod].path}) which does "
                f"not derive from {base} — callers cannot catch it via "
                "the library's exception contract")]
        if mod != errors_mod and index.resolve_symbol(
                errors_mod, sym) != resolved:
            return [self.finding(
                info.path, node,
                f"raises {sym}, defined in {mod} but not reachable via "
                f"{errors_mod} — error classes must be importable from "
                "the errors module so callers have one import point")]
        return []

    def _check_pickle_safety(self, info, cls: ast.ClassDef
                             ) -> list[Finding]:
        init = next((item for item in cls.body
                     if isinstance(item, ast.FunctionDef)
                     and item.name == "__init__"), None)
        if init is None:
            return []
        if any(isinstance(item, ast.FunctionDef)
               and item.name == "__reduce__" for item in cls.body):
            return []
        missing = [p for p in _init_params(init)
                   if p not in _forwarded_names(init)]
        if not missing:
            return []
        return [self.finding(
            info.path, init,
            f"{cls.name} derives (cross-module) from ReproError but "
            f"__init__ keeps ({', '.join(missing)}) without forwarding "
            "to super().__init__ and without __reduce__ — the "
            "exception loses this state crossing a worker pool's "
            "result queue")]
