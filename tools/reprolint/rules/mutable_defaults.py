"""no-mutable-defaults: default argument values must not be mutable.

A ``def f(log=[])`` default is evaluated once at definition time and
shared by every call — state leaks across calls, and in this codebase
across *chunks* and *retries*, which is exactly the kind of hidden
coupling the bit-identical execution guarantees cannot tolerate.
Applies to every scanned file (library, tools, benchmarks, examples).
"""

from __future__ import annotations

import ast

from ..engine import Finding, Rule, iter_nodes

#: Constructor names whose call as a default is equally shared/mutable.
MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set,
                     ast.ListComp, ast.DictComp, ast.SetComp)


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in MUTABLE_CALLS)


class MutableDefaultsRule(Rule):
    rule_id = "no-mutable-defaults"
    description = "mutable default argument value (list/dict/set literal)"
    applies_to = ()  # every scanned file

    def visit(self, tree: ast.Module, source: str,
              path: str) -> list[Finding]:
        findings = []
        for func in iter_nodes(tree, ast.FunctionDef,
                               ast.AsyncFunctionDef, ast.Lambda):
            name = getattr(func, "name", "<lambda>")
            defaults = list(func.args.defaults)
            defaults.extend(d for d in func.args.kw_defaults
                            if d is not None)
            for default in defaults:
                if _is_mutable_default(default):
                    findings.append(self.finding(
                        path, default,
                        f"mutable default in {name}() is evaluated once "
                        "and shared across calls — default to None (or "
                        "an immutable tuple) and build the container in "
                        "the body"))
        return findings
