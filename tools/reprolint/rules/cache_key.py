"""cache-key-soundness: every result-affecting config field is keyed.

The serving cache (PR 6) is only sound because of a convention: a
workload's ``canonical_params`` must key *every* field of its config
schema except the declared execution knobs (``n_workers`` and friends,
which select a strategy, never a result — sound under the repo-wide
bit-identity discipline).  The convention drifts in exactly two ways,
and each is silent at runtime:

* a new config field is added but a hand-written ``canonical_params``
  override never keys it — two requests differing only in that field
  now collide in the cache and one of them is served the wrong result;
* a field is quietly excluded as an "execution knob" without the
  shared review that the exclusion list in ``pyproject.toml``
  (``[tool.reprolint.rule.cache-key-soundness] execution-knobs``)
  represents.

This whole-program rule resolves, for every class deriving from the
workload contract, the cross-module chain ``Workload subclass →
config_type dataclass → fields`` and checks:

1. every knob the code excludes (``execution_knobs``) appears on the
   pyproject exclusion list, and names a real config field;
2. every non-excluded field reaches the canonicalization — trivially
   true for the inherited ``asdict``-based ``canonical_params``;
   an override that does not call ``asdict`` must mention each field
   name as a string literal.

Findings anchor to the most actionable line: an unkeyed field points
at the field's declaration, an undeclared knob at the
``execution_knobs`` assignment.
"""

from __future__ import annotations

import ast

from ..engine import Finding, ProgramRule
from ..program import ProgramIndex, dotted_name

#: Where the workload contract lives (override per-repo with the
#: ``workload-base`` option — the fixture mini-repos carry their own).
DEFAULT_WORKLOAD_BASE = "repro.workloads.base.Workload"


def _annotation_is_classvar(node: ast.AST | None) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Subscript):
        node = node.value
    name = dotted_name(node)
    return name is not None and name.split(".")[-1] == "ClassVar"


def _config_fields(index: ProgramIndex, module: str,
                   cls: ast.ClassDef) -> dict[str, tuple[str, ast.AST]]:
    """Dataclass field name -> (module, AnnAssign node), across the
    resolvable base chain (nearest definition wins)."""
    fields: dict[str, tuple[str, ast.AST]] = {}
    for mod, node in index.mro_classes(module, cls):
        for stmt in node.body:
            if (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and not _annotation_is_classvar(stmt.annotation)):
                fields.setdefault(stmt.target.id, (mod, stmt))
    return fields


def _calls_asdict(fn: ast.AST) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is not None and name.split(".")[-1] == "asdict":
                return True
    return False


def _string_literals(fn: ast.AST) -> set[str]:
    return {node.value for node in ast.walk(fn)
            if isinstance(node, ast.Constant)
            and isinstance(node.value, str)}


class CacheKeySoundnessRule(ProgramRule):
    rule_id = "cache-key-soundness"
    description = ("a result-affecting config field never reaches the "
                   "serving cache-key canonicalization, or an execution "
                   "knob is excluded without being declared")

    def visit_program(self, index: ProgramIndex,
                      options: dict) -> list[Finding]:
        declared = frozenset(options.get("execution-knobs", ()))
        base = str(options.get("workload-base", DEFAULT_WORKLOAD_BASE))
        findings: set[Finding] = set()
        for module in list(index.modules.values()):
            for cls in module.classes.values():
                if not index.derives_from(module.name, cls, base):
                    continue
                findings.update(self._check_workload(
                    index, module.name, cls, declared))
        return list(findings)

    def _check_workload(self, index: ProgramIndex, module: str,
                        cls: ast.ClassDef,
                        declared: frozenset) -> list[Finding]:
        info = index.modules[module]
        config_attr = index.class_attr(module, cls, "config_type")
        if config_attr is None:
            return []
        cfg_mod, cfg_expr = config_attr
        if isinstance(cfg_expr, ast.Constant) and cfg_expr.value is None:
            return []  # abstract: no schema to key
        name = dotted_name(cfg_expr)
        resolved = (index.lookup_class(cfg_mod, name)
                    if name is not None else None)
        if resolved is None:
            return [self.finding(
                info.path, cls,
                f"workload {cls.name}: config_type "
                f"{ast.unparse(cfg_expr)!r} does not resolve to a class "
                "in the program — the cache-key audit cannot see its "
                "fields")]
        config_module, config_cls = resolved
        fields = _config_fields(index, config_module, config_cls)

        findings: list[Finding] = []
        knob_attr = index.class_attr(module, cls, "execution_knobs")
        knobs: frozenset = frozenset()
        if knob_attr is not None:
            knob_mod, knob_expr = knob_attr
            evaluated = index.eval_string_set(knob_mod, knob_expr)
            if evaluated is None:
                findings.append(self.finding(
                    index.modules[knob_mod].path, knob_expr,
                    f"workload {cls.name}: execution_knobs is not a "
                    "statically evaluable set of field-name strings, so "
                    "the exclusion list cannot be audited"))
            else:
                knobs = evaluated
                for knob in sorted(knobs - declared):
                    findings.append(self.finding(
                        index.modules[knob_mod].path, knob_expr,
                        f"workload {cls.name} excludes {knob!r} from the "
                        "cache key but the knob is not on the declared "
                        "exclusion list ([tool.reprolint.rule."
                        "cache-key-soundness] execution-knobs)"))
                for knob in sorted(knobs - set(fields)):
                    findings.append(self.finding(
                        index.modules[knob_mod].path, knob_expr,
                        f"workload {cls.name} excludes {knob!r} from the "
                        f"cache key but {config_cls.name} has no such "
                        "field — a typoed knob silently keys nothing"))

        canonical = index.class_method(module, cls, "canonical_params")
        if canonical is None:
            findings.append(self.finding(
                info.path, cls,
                f"workload {cls.name} has no reachable canonical_params "
                "— its requests cannot be cache-keyed"))
            return findings
        can_mod, can_fn = canonical
        if _calls_asdict(can_fn):
            return findings  # asdict keys every field by construction
        keyed = _string_literals(can_fn)
        for field in sorted(set(fields) - knobs - keyed):
            field_mod, field_node = fields[field]
            findings.append(self.finding(
                index.modules[field_mod].path, field_node,
                f"result-affecting field {field!r} of {config_cls.name} "
                f"never reaches canonical_params of workload {cls.name} "
                f"({index.modules[can_mod].path}:{can_fn.lineno}) — two "
                "requests differing only in this field would collide in "
                "the serving cache"))
        return findings
