"""no-wallclock-in-compute: deterministic kernels must not read the clock.

The emulated device is a *model*: every modeled millisecond is derived
from counted work priced by spec constants, and results must be
bit-identical across serial, parallel and fault-recovered executions.
A ``time.time()`` / ``perf_counter()`` / ``datetime.now()`` read inside
compute code injects host wall-clock state into that model — the value
differs every run, so anything derived from it is unreproducible.

Host-side *measurement* is legitimate, and has a home: the profiling
layer (``repro.profiling``) and the worker-pool timing sites
(``repro.parallel``) are exempt.  ``time.sleep`` is not flagged —
pausing does not feed clock values into a computation (the fault
injector uses it to emulate stalls).
"""

from __future__ import annotations

import ast

from ..engine import Finding, Rule, iter_nodes

#: time-module attributes that read a clock.
CLOCK_READS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "process_time", "process_time_ns",
    "thread_time", "thread_time_ns", "clock_gettime", "clock_gettime_ns",
})

#: datetime / date classmethods that read a clock.
DATETIME_READS = frozenset({"now", "utcnow", "today"})


def _alias_tables(tree: ast.Module):
    time_aliases: set[str] = set()
    clock_names: set[str] = set()          # from time import perf_counter
    datetime_mod_aliases: set[str] = set()  # import datetime
    datetime_cls_aliases: set[str] = set()  # from datetime import datetime
    for node in iter_nodes(tree, ast.Import):
        for alias in node.names:
            if alias.name == "time":
                time_aliases.add(alias.asname or "time")
            elif alias.name == "datetime":
                datetime_mod_aliases.add(alias.asname or "datetime")
    for node in iter_nodes(tree, ast.ImportFrom):
        if node.level != 0:
            continue
        if node.module == "time":
            for alias in node.names:
                if alias.name in CLOCK_READS:
                    clock_names.add(alias.asname or alias.name)
        elif node.module == "datetime":
            for alias in node.names:
                if alias.name in ("datetime", "date"):
                    datetime_cls_aliases.add(alias.asname or alias.name)
    return (time_aliases, clock_names, datetime_mod_aliases,
            datetime_cls_aliases)


class WallclockRule(Rule):
    rule_id = "no-wallclock-in-compute"
    description = ("wall-clock read (time.*, datetime.now) outside the "
                   "profiling and parallel timing layers")
    applies_to = ("src/repro",)
    allowed_paths = ("src/repro/profiling", "src/repro/parallel")

    def visit(self, tree: ast.Module, source: str,
              path: str) -> list[Finding]:
        (time_aliases, clock_names, datetime_mods,
         datetime_classes) = _alias_tables(tree)
        findings = []
        for node in iter_nodes(tree, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in clock_names:
                findings.append(self._clock_finding(path, node, func.id))
            elif isinstance(func, ast.Attribute):
                value = func.value
                if (func.attr in CLOCK_READS
                        and isinstance(value, ast.Name)
                        and value.id in time_aliases):
                    findings.append(
                        self._clock_finding(path, node,
                                            f"time.{func.attr}"))
                elif func.attr in DATETIME_READS and (
                        (isinstance(value, ast.Name)
                         and value.id in datetime_classes)
                        or (isinstance(value, ast.Attribute)
                            and value.attr in ("datetime", "date")
                            and isinstance(value.value, ast.Name)
                            and value.value.id in datetime_mods)):
                    findings.append(
                        self._clock_finding(path, node,
                                            f"datetime.{func.attr}"))
        return findings

    def _clock_finding(self, path: str, node: ast.AST,
                       what: str) -> Finding:
        return self.finding(
            path, node,
            f"{what}() reads the wall clock inside deterministic compute "
            "— timing belongs in repro.profiling / repro.parallel, which "
            "are the exempt layers")
