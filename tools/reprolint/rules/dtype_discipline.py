"""dtype-discipline: the emulated shader path stays float32.

The paper's GPU mapping stores hyperspectral data as RGBA *float32*
textures and shades them with float4 arithmetic — the reproduction's
three-way agreement tests (reference vs oracle vs GPU) are calibrated
to exactly that precision.  A ``np.float64`` array or a bare
``float(...)`` cast introduced into :mod:`repro.gpu` or
:mod:`repro.stream` silently widens part of the texel path to double,
making the emulation *more* accurate than the hardware it models — a
reproducibility bug that no runtime test catches until a golden hash
drifts.

Host-side scalar plumbing that never touches texel data (vertex
coordinates, counter aggregates, compile-time shader constants) is
exempted line-by-line with ``# reprolint: disable=dtype-discipline``
or path-wide via ``[tool.reprolint.allow]`` in ``pyproject.toml``.
"""

from __future__ import annotations

import ast

from ..engine import Finding, Rule, iter_nodes

#: numpy attributes that name a wider-than-float32 float dtype.
WIDE_DTYPES = frozenset({"float64", "double", "longdouble", "float128"})


def _numpy_aliases(tree: ast.Module) -> set[str]:
    aliases = set()
    for node in iter_nodes(tree, ast.Import):
        for alias in node.names:
            if alias.name == "numpy":
                aliases.add(alias.asname or "numpy")
            elif alias.name.startswith("numpy."):
                aliases.add("numpy")
    return aliases


class DtypeDisciplineRule(Rule):
    rule_id = "dtype-discipline"
    description = ("np.float64 or bare float() cast in the float32 "
                   "emulated-shader path (repro.gpu / repro.stream)")
    applies_to = ("src/repro/gpu", "src/repro/stream")

    def visit(self, tree: ast.Module, source: str,
              path: str) -> list[Finding]:
        aliases = _numpy_aliases(tree)
        findings = []
        for node in iter_nodes(tree, ast.ImportFrom):
            if node.module in ("numpy", "numpy.core") and node.level == 0:
                wide = [alias.name for alias in node.names
                        if alias.name in WIDE_DTYPES]
                if wide:
                    findings.append(self.finding(
                        path, node,
                        f"importing {', '.join(wide)} into the emulated "
                        "shader path — RGBA texture semantics are "
                        "float32 (use np.float32)"))
        for node in iter_nodes(tree, ast.Attribute):
            if (node.attr in WIDE_DTYPES
                    and isinstance(node.value, ast.Name)
                    and node.value.id in aliases):
                findings.append(self.finding(
                    path, node,
                    f"np.{node.attr} in the emulated shader path — RGBA "
                    "texture semantics are float32 (use np.float32, or "
                    "suppress with a justification if this never touches "
                    "texel data)"))
        for node in iter_nodes(tree, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id == "float":
                findings.append(self.finding(
                    path, node,
                    "bare float() cast produces a Python double in the "
                    "float32 shader path — use np.float32, or suppress "
                    "with a justification if this is host-side scalar "
                    "plumbing"))
        findings.sort(key=Finding.sort_key)
        return findings
