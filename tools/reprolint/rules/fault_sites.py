"""fault-site-registry: every fault site is registered, documented, tested.

The fault injector's whole value is *coverage you can trust*: a chaos
campaign configures sites by name, so a ``maybe_inject("new_site")``
call that is not in the :data:`repro.faults.FAULT_SITES` registry is
invisible to every existing campaign, a registered site with no
surviving call is a campaign that silently tests nothing, and a site
no test exercises is a recovery path that has never actually run.

This whole-program rule cross-checks four surfaces:

1. **code** — every call that resolves to the injector's
   ``maybe_inject`` passes a string-literal site name (a computed name
   cannot be audited) that is registered;
2. **registry** — every registered site still has at least one call
   (no dead registry entries);
3. **docs** — every registered site appears in the robustness
   documentation (``docs`` option, default ``docs/robustness.md``);
4. **tests** — every registered site is exercised somewhere under the
   test tree (``tests`` option, default ``tests``): a ``site="name"``
   spec kwarg or a literal ``maybe_inject("name")`` call.  Fixture
   directories are skipped — deliberately-broken lint fixtures must
   not vouch for real coverage.

Registry/docs/tests findings anchor to the registry entry (or the
registry assignment), call-site findings to the call.
"""

from __future__ import annotations

import ast
import os
import re

from ..engine import Finding, ProgramRule
from ..program import ProgramIndex, dotted_name

#: Defaults; each is overridable via ``[tool.reprolint.rule.fault-site-registry]``.
DEFAULT_REGISTRY = "repro.faults.injector.FAULT_SITES"
DEFAULT_INJECT = "repro.faults.injector.maybe_inject"
DEFAULT_DOCS = "docs/robustness.md"
DEFAULT_TESTS = "tests"

#: Test-tree directories never scanned for site coverage.
_SKIP_TEST_DIRS = frozenset({"fixtures", "program_fixtures", "__pycache__"})


def _test_sources(root: str, tests_rel: str):
    base = os.path.join(root, tests_rel)
    for dirpath, dirnames, filenames in os.walk(base):
        dirnames[:] = sorted(d for d in dirnames
                             if d not in _SKIP_TEST_DIRS
                             and not d.startswith("."))
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                try:
                    with open(os.path.join(dirpath, filename),
                              encoding="utf-8") as fh:
                        yield fh.read()
                except OSError:
                    continue


class FaultSiteRegistryRule(ProgramRule):
    rule_id = "fault-site-registry"
    description = ("a maybe_inject fault site is unregistered, "
                   "undocumented, dead, or exercised by no test")

    def visit_program(self, index: ProgramIndex,
                      options: dict) -> list[Finding]:
        registry_fq = str(options.get("registry", DEFAULT_REGISTRY))
        inject_fq = str(options.get("inject-function", DEFAULT_INJECT))
        docs_rel = str(options.get("docs", DEFAULT_DOCS))
        tests_rel = str(options.get("tests", DEFAULT_TESTS))

        inject_mod, _, inject_name = inject_fq.rpartition(".")
        calls = self._inject_calls(index, inject_mod, inject_name)

        reg_mod, _, reg_name = registry_fq.rpartition(".")
        reg_info = index.modules.get(reg_mod)
        reg_value = (reg_info.assigns.get(reg_name)
                     if reg_info is not None else None)
        findings: list[Finding] = []
        if reg_value is None:
            anchor_info, anchor_node = self._registry_anchor(index, calls)
            if anchor_info is not None:
                findings.append(self.finding(
                    anchor_info.path, anchor_node,
                    f"no fault-site registry found at {registry_fq} — "
                    "every maybe_inject site must be enumerated there"))
            return findings

        registered: dict[str, ast.AST] = {}
        if isinstance(reg_value, ast.Dict):
            for key in reg_value.keys:
                if (isinstance(key, ast.Constant)
                        and isinstance(key.value, str)):
                    registered[key.value] = key
                elif key is not None:
                    findings.append(self.finding(
                        reg_info.path, key,
                        f"{reg_name} key is not a string literal — the "
                        "registry must be statically enumerable"))
        else:
            findings.append(self.finding(
                reg_info.path, reg_value,
                f"{reg_name} is not a literal dict — the registry must "
                "be statically enumerable"))
            return findings

        used: set[str] = set()
        for info, call in calls:
            site = self._literal_site(call)
            if site is None:
                findings.append(self.finding(
                    info.path, call,
                    "maybe_inject site is not a string literal — the "
                    "site cannot be audited or targeted by a campaign"))
                continue
            used.add(site)
            if site not in registered:
                findings.append(self.finding(
                    info.path, call,
                    f"fault site {site!r} is not registered in "
                    f"{registry_fq} — chaos campaigns cannot discover "
                    "it"))

        docs_path = os.path.join(index.root, docs_rel)
        docs_text = ""
        docs_exist = os.path.isfile(docs_path)
        if docs_exist:
            with open(docs_path, encoding="utf-8") as fh:
                docs_text = fh.read()
        else:
            findings.append(self.finding(
                reg_info.path, reg_value,
                f"fault-site documentation {docs_rel!r} not found — "
                "registered sites must be documented"))

        tested_text = "\n".join(_test_sources(index.root, tests_rel))

        for site in sorted(registered):
            anchor = registered[site]
            if site not in used:
                findings.append(self.finding(
                    reg_info.path, anchor,
                    f"registered fault site {site!r} has no surviving "
                    "maybe_inject call — a campaign targeting it "
                    "silently tests nothing"))
            if docs_exist and not re.search(
                    rf"\b{re.escape(site)}\b", docs_text):
                findings.append(self.finding(
                    reg_info.path, anchor,
                    f"registered fault site {site!r} is not mentioned "
                    f"in {docs_rel}"))
            if not re.search(
                    rf"""site\s*=\s*['"]{re.escape(site)}['"]"""
                    rf"""|maybe_inject\(\s*['"]{re.escape(site)}['"]""",
                    tested_text):
                findings.append(self.finding(
                    reg_info.path, anchor,
                    f"no test under {tests_rel}/ exercises fault site "
                    f"{site!r} (no site=\"{site}\" spec and no literal "
                    "maybe_inject call) — its recovery path has never "
                    "run"))
        return findings

    # -- helpers ---------------------------------------------------------

    def _inject_calls(self, index: ProgramIndex, inject_mod: str,
                      inject_name: str):
        calls = []
        target = (inject_mod, inject_name)
        for info in index.modules.values():
            for call in index.walk_module(info, ast.Call):
                name = dotted_name(call.func)
                if name is None or name.split(".")[-1] != inject_name:
                    continue
                if index.resolve_symbol(info.name, name) == target:
                    calls.append((info, call))
        return calls

    def _literal_site(self, call: ast.Call) -> str | None:
        if call.args and isinstance(call.args[0], ast.Constant) \
                and isinstance(call.args[0].value, str):
            return call.args[0].value
        for keyword in call.keywords:
            if keyword.arg == "site" and isinstance(
                    keyword.value, ast.Constant) and isinstance(
                    keyword.value.value, str):
                return keyword.value.value
        return None

    def _registry_anchor(self, index: ProgramIndex, calls):
        if calls:
            return calls[0]
        return (None, None)
