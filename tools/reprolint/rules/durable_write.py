"""durable-write: serving state mutations go through the atomic helpers.

The durable serving tier (PR 8) makes one promise: a reader after a
crash sees either the old bytes or the new bytes of any state file —
never a torn one.  That promise holds only because *every* mutation of
the journal/cache directories routes through
``repro.serving.durable`` (tmp + fsync + ``os.replace`` for whole
files, flush + fsync for appends, directory fsyncs for deletes and
renames).  One bare ``open(..., "w")`` in the serving package and the
protocol has a hole a crash will eventually find.

This rule therefore bans raw filesystem *mutation* anywhere under
``src/repro/serving`` outside the helper module itself:

* ``open()`` / ``os.fdopen()`` with a write-capable mode (``w``, ``a``,
  ``x`` or ``+``) — or a mode the rule cannot prove read-only;
* ``os.open()`` (the fd-level escape hatch around the same check);
* the mutating ``os`` calls (``unlink``, ``remove``, ``replace``,
  ``rename`` and friends) and everything in ``shutil``.

Read-mode opens are untouched — loading state is not mutating it.
``durable.py`` is exempt (it *is* the protocol) and so is ``net.py``
(its one ``os.unlink`` removes the listening socket, which is
kernel-owned transport state, not durable job state).
"""

from __future__ import annotations

import ast

from ..engine import Finding, Rule, iter_nodes

#: ``os`` functions that mutate the filesystem.
OS_MUTATORS = frozenset({
    "unlink", "remove", "replace", "rename", "renames", "rmdir",
    "removedirs", "truncate", "link", "symlink", "open", "fdopen",
})

#: open() mode characters that permit writing.
WRITE_MODE_CHARS = frozenset("wax+")


def _alias_tables(tree: ast.Module):
    """(os aliases, shutil aliases, names bound from os/shutil)."""
    os_aliases: set[str] = set()
    shutil_aliases: set[str] = set()
    bound_names: set[str] = set()
    for node in iter_nodes(tree, ast.Import):
        for alias in node.names:
            if alias.name == "os":
                os_aliases.add(alias.asname or "os")
            elif alias.name == "os.path":
                os_aliases.add("os")
            elif alias.name == "shutil":
                shutil_aliases.add(alias.asname or "shutil")
    for node in iter_nodes(tree, ast.ImportFrom):
        if node.level != 0:
            continue
        if node.module == "os":
            for alias in node.names:
                if alias.name in OS_MUTATORS:
                    bound_names.add(alias.asname or alias.name)
        elif node.module == "shutil":
            for alias in node.names:
                bound_names.add(alias.asname or alias.name)
    return os_aliases, shutil_aliases, bound_names


def _mode_argument(node: ast.Call) -> ast.expr | None:
    """The mode argument of an ``open``-style call, if supplied."""
    if len(node.args) >= 2:
        return node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            return keyword.value
    return None


def _writes(mode: ast.expr | None) -> bool:
    """Whether a mode argument permits (or cannot exclude) writing."""
    if mode is None:
        return False    # default "r": read-only
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return bool(WRITE_MODE_CHARS & set(mode.value))
    return True         # dynamic mode: cannot prove read-only


class DurableWriteRule(Rule):
    rule_id = "durable-write"
    description = ("raw filesystem mutation in the serving package — "
                   "state writes must go through repro.serving.durable")
    applies_to = ("src/repro/serving",)
    allowed_paths = ("src/repro/serving/durable.py",
                     "src/repro/serving/net.py")

    def visit(self, tree: ast.Module, source: str,
              path: str) -> list[Finding]:
        os_aliases, shutil_aliases, bound_names = _alias_tables(tree)
        findings = []
        for node in iter_nodes(tree, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id == "open" and _writes(_mode_argument(node)):
                    findings.append(self._mutation(
                        path, node, "open() with a write-capable mode"))
                elif func.id in bound_names:
                    findings.append(self._mutation(
                        path, node, f"{func.id}()"))
            elif isinstance(func, ast.Attribute):
                value = func.value
                if not isinstance(value, ast.Name):
                    continue
                if value.id in os_aliases and func.attr in OS_MUTATORS:
                    if (func.attr == "fdopen"
                            and not _writes(_mode_argument(node))):
                        continue
                    findings.append(self._mutation(
                        path, node, f"os.{func.attr}()"))
                elif value.id in shutil_aliases:
                    findings.append(self._mutation(
                        path, node, f"shutil.{func.attr}()"))
        findings.sort(key=Finding.sort_key)
        return findings

    def _mutation(self, path: str, node: ast.AST, what: str) -> Finding:
        return self.finding(
            path, node,
            f"{what} mutates the filesystem outside the atomic-write "
            "protocol — route serving state changes through "
            "repro.serving.durable so a crash can never tear them")
