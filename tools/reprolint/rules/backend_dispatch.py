"""backend-dispatch: backend name resolution stays in the registry.

AST port of the original ``tools/check_dispatch.py`` regex.  Flags any
``==`` / ``!=`` comparison whose operand is a name or attribute called
``backend`` (``backend``, ``config.backend``, ``args.backend``,
``self.backend``, ...) — the if/elif dispatch idiom the
:mod:`repro.backends` registry replaced.  Text occurrences in strings
and docstrings (release notes, historical commentary) no longer
false-positive.
"""

from __future__ import annotations

import ast

from ..engine import Finding, Rule, iter_nodes


def _is_backend_operand(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id == "backend"
    if isinstance(node, ast.Attribute):
        return node.attr == "backend"
    return False


class BackendDispatchRule(Rule):
    rule_id = "backend-dispatch"
    description = ("`backend == ...` string dispatch outside the "
                   "repro.backends registry")
    applies_to = ("src/repro",)
    allowed_paths = ("src/repro/backends",)

    def visit(self, tree: ast.Module, source: str,
              path: str) -> list[Finding]:
        findings = []
        for compare in iter_nodes(tree, ast.Compare):
            operands = [compare.left, *compare.comparators]
            for index, op in enumerate(compare.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if (_is_backend_operand(operands[index])
                        or _is_backend_operand(operands[index + 1])):
                    findings.append(self.finding(
                        path, compare,
                        "backend string comparison outside repro/backends/ "
                        "— resolve through repro.backends.get_backend() "
                        "and put capabilities on the backend object"))
                    break
        return findings
