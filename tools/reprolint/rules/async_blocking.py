"""no-blocking-call-in-async: the serving event loop must never block.

The serving layer (``repro.serving``) multiplexes every client and
every job over one asyncio event loop; a single synchronous stall —
``time.sleep``, a blocking ``pool.get`` — freezes *all* of them at
once: admission stops answering, coalescing stops matching, and the
backpressure contract (reject fast with ``retry_after_s``) silently
degrades into "hang".  Blocking work belongs on the executor
(``loop.run_in_executor``), which is exactly how :class:`AMCServer`
runs the pipeline.

What is flagged, inside ``async def`` bodies under the scoped paths:

* ``time.sleep(...)`` — including ``from time import sleep`` aliases;
  pausing a coroutine is spelled ``await asyncio.sleep(...)``.
* ``<pool-ish>.get/.join/.map/.apply(...)`` where the receiver's name
  contains ``pool`` and the call is *not* directly awaited — the
  multiprocessing/result-queue idioms that block the calling thread.
  Directly awaited calls are fine (``await queue.get()`` on an
  ``asyncio.Queue`` is the non-blocking counterpart).

Nested synchronous ``def``/``lambda`` bodies are *not* scanned: code
handed to ``run_in_executor`` is allowed — encouraged — to block.
"""

from __future__ import annotations

import ast

from ..engine import Finding, Rule, iter_nodes

#: Method names that block the calling thread on pool-like objects.
BLOCKING_POOL_METHODS = frozenset({"get", "join", "map", "apply"})


def _sleep_aliases(tree: ast.Module) -> tuple[set[str], set[str]]:
    """(aliases of the ``time`` module, aliases of ``time.sleep``)."""
    time_aliases: set[str] = set()
    sleep_names: set[str] = set()
    for node in iter_nodes(tree, ast.Import):
        for alias in node.names:
            if alias.name == "time":
                time_aliases.add(alias.asname or "time")
    for node in iter_nodes(tree, ast.ImportFrom):
        if node.level == 0 and node.module == "time":
            for alias in node.names:
                if alias.name == "sleep":
                    sleep_names.add(alias.asname or alias.name)
    return time_aliases, sleep_names


def _coroutine_body_nodes(func: ast.AsyncFunctionDef) -> list[ast.AST]:
    """Nodes in ``func``'s body, excluding nested function scopes.

    A nested synchronous ``def`` (or lambda) is a separate execution
    context — typically the thunk handed to ``run_in_executor`` —
    where blocking is the whole point, so traversal stops at any
    function boundary.  Nested *async* defs are excluded here too;
    they are visited in their own right as separate coroutines.
    """
    out: list[ast.AST] = []
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        out.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return out


class AsyncBlockingRule(Rule):
    rule_id = "no-blocking-call-in-async"
    description = ("blocking call (time.sleep, pool.get/join/map/apply) "
                   "inside an async def — stalls the whole event loop")
    applies_to = ("src/repro/serving",)

    def visit(self, tree: ast.Module, source: str,
              path: str) -> list[Finding]:
        time_aliases, sleep_names = _sleep_aliases(tree)
        findings = []
        for func in iter_nodes(tree, ast.AsyncFunctionDef):
            body = _coroutine_body_nodes(func)
            awaited = {id(n.value) for n in body
                       if isinstance(n, ast.Await)}
            for node in body:
                if not isinstance(node, ast.Call):
                    continue
                what = self._blocking_call(node, time_aliases, sleep_names,
                                           awaited)
                if what is not None:
                    findings.append(self.finding(
                        path, node,
                        f"{what} blocks the event loop inside async "
                        f"def {func.name}() — await the async "
                        "counterpart or move the work to "
                        "loop.run_in_executor"))
        findings.sort(key=Finding.sort_key)
        return findings

    def _blocking_call(self, node: ast.Call, time_aliases: set[str],
                       sleep_names: set[str],
                       awaited: set[int]) -> str | None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in sleep_names:
            return f"{func.id}() (time.sleep)"
        if not isinstance(func, ast.Attribute):
            return None
        value = func.value
        if (func.attr == "sleep" and isinstance(value, ast.Name)
                and value.id in time_aliases):
            return "time.sleep()"
        if (func.attr in BLOCKING_POOL_METHODS
                and id(node) not in awaited
                and isinstance(value, ast.Name)
                and "pool" in value.id.lower()):
            return f"{value.id}.{func.attr}()"
        return None
