"""workload-dispatch: workload name resolution stays in the registry.

The workload-level mirror of ``backend-dispatch``.  Flags any ``==`` /
``!=`` comparison whose operand is a name or attribute called
``workload`` or ``algo`` (``workload``, ``job.workload``,
``args.algo``, ...) — the if/elif dispatch idiom the
:mod:`repro.workloads` registry replaced.  Resolve through
``get_workload()`` and branch on capabilities the workload object
declares (``kind``, ``requires_target``, ``halo()``) or on object
identity, never on its name.  The registry package itself is exempt —
something has to own the name-to-object mapping.
"""

from __future__ import annotations

import ast

from ..engine import Finding, Rule, iter_nodes

#: Identifier spellings that mean "which algorithm" at call sites.
_WORKLOAD_NAMES = frozenset({"workload", "algo"})


def _is_workload_operand(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id in _WORKLOAD_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _WORKLOAD_NAMES
    return False


class WorkloadDispatchRule(Rule):
    rule_id = "workload-dispatch"
    description = ("`workload == ...` string dispatch outside the "
                   "repro.workloads registry")
    applies_to = ("src/repro",)
    allowed_paths = ("src/repro/workloads",)

    def visit(self, tree: ast.Module, source: str,
              path: str) -> list[Finding]:
        findings = []
        for compare in iter_nodes(tree, ast.Compare):
            operands = [compare.left, *compare.comparators]
            for index, op in enumerate(compare.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if (_is_workload_operand(operands[index])
                        or _is_workload_operand(operands[index + 1])):
                    findings.append(self.finding(
                        path, compare,
                        "workload name comparison outside repro/workloads/ "
                        "— resolve through repro.workloads.get_workload() "
                        "and branch on workload capabilities, not names"))
                    break
        return findings
