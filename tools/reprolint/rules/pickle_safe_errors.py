"""pickle-safe-errors: exception state must survive a pool result queue.

Worker exceptions cross ``multiprocessing`` result queues by pickling,
and the default exception ``__reduce__`` reconstructs from ``args``
alone.  An exception ``__init__`` that accepts extra parameters but
does not forward them to ``super().__init__`` therefore arrives in the
parent either stripped of its state or not at all (a ``TypeError``
inside the unpickler — the PR 3 ``GpuOutOfMemoryError`` bug).

This rule generalizes that fix across the whole :class:`ReproError`
hierarchy: for every class that (transitively, within its module)
derives from ``ReproError`` and defines ``__init__``, each non-``self``
parameter must either be forwarded to a ``super().__init__(...)`` /
``Base.__init__(self, ...)`` call, or the class must define
``__reduce__`` to ship the extra state explicitly.
"""

from __future__ import annotations

import ast

from ..engine import Finding, Rule, iter_nodes

#: The root of the library's exception hierarchy (``src/repro/errors.py``).
ROOT_ERROR = "ReproError"


def _base_names(cls: ast.ClassDef) -> set[str]:
    names = set()
    for base in cls.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


def _error_classes(classes: list[ast.ClassDef]) -> set[str]:
    """Transitive closure of ReproError-derived class names in one module."""
    error_names = {ROOT_ERROR}
    changed = True
    while changed:
        changed = False
        for cls in classes:
            if cls.name not in error_names and (_base_names(cls)
                                                & error_names):
                error_names.add(cls.name)
                changed = True
    return error_names


def _init_params(init: ast.FunctionDef) -> list[str]:
    """Parameter names beyond the first (``self``), including * and **."""
    args = init.args
    positional = [a.arg for a in args.posonlyargs + args.args]
    names = positional[1:]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    names.extend(a.arg for a in args.kwonlyargs)
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return names


def _forwarded_names(init: ast.FunctionDef) -> set[str]:
    """Names passed (positionally, starred, or by keyword) to any
    ``super().__init__`` / ``Base.__init__`` call inside ``init``."""
    forwarded: set[str] = set()
    for node in ast.walk(init):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "__init__"):
            continue
        for arg in node.args:
            if isinstance(arg, ast.Name):
                forwarded.add(arg.id)
            elif (isinstance(arg, ast.Starred)
                  and isinstance(arg.value, ast.Name)):
                forwarded.add(arg.value.id)
        for keyword in node.keywords:
            if isinstance(keyword.value, ast.Name):
                forwarded.add(keyword.value.id)
    return forwarded


class PickleSafeErrorsRule(Rule):
    rule_id = "pickle-safe-errors"
    description = ("ReproError subclass __init__ keeps state that neither "
                   "super().__init__ nor __reduce__ would pickle")
    applies_to = ("src/repro",)

    def visit(self, tree: ast.Module, source: str,
              path: str) -> list[Finding]:
        classes = iter_nodes(tree, ast.ClassDef)
        error_names = _error_classes(classes)
        findings = []
        for cls in classes:
            if cls.name not in error_names or cls.name == ROOT_ERROR:
                continue
            init = next(
                (item for item in cls.body
                 if isinstance(item, ast.FunctionDef)
                 and item.name == "__init__"), None)
            if init is None:
                continue
            has_reduce = any(isinstance(item, ast.FunctionDef)
                             and item.name == "__reduce__"
                             for item in cls.body)
            if has_reduce:
                continue
            missing = [name for name in _init_params(init)
                       if name not in _forwarded_names(init)]
            if missing:
                findings.append(self.finding(
                    path, init,
                    f"{cls.name}.__init__ takes ({', '.join(missing)}) "
                    "without forwarding to super().__init__ and the class "
                    "defines no __reduce__ — the exception loses this "
                    "state (or fails to unpickle) crossing a worker "
                    "pool's result queue"))
        return findings
