"""blanket-except: arbitrary-failure absorption stays in the resilience layer.

AST port of the original ``tools/check_excepts.py`` regex.  Matching
``ast.ExceptHandler`` nodes instead of text means a literal
``"except Exception:"`` inside a string, comment or docstring can no
longer false-positive, and a blanket name buried in a tuple clause
(``except (ValueError, BaseException):``) can no longer hide.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, Rule, iter_nodes

_BLANKET = ("Exception", "BaseException")


def _caught_names(node: ast.expr) -> Iterator[str]:
    """Terminal identifiers of an except clause's type expression."""
    if isinstance(node, ast.Tuple):
        for elt in node.elts:
            yield from _caught_names(elt)
    elif isinstance(node, ast.Name):
        yield node.id
    elif isinstance(node, ast.Attribute):
        yield node.attr


class BlanketExceptRule(Rule):
    rule_id = "blanket-except"
    description = ("bare `except:` or blanket `except Exception` / "
                   "`except BaseException` outside repro.resilience")
    applies_to = ("src/repro",)
    allowed_paths = ("src/repro/resilience",)

    def visit(self, tree: ast.Module, source: str,
              path: str) -> list[Finding]:
        findings = []
        for handler in iter_nodes(tree, ast.ExceptHandler):
            if handler.type is None:
                findings.append(self.finding(
                    path, handler,
                    "bare `except:` swallows arbitrary failures — catch "
                    "specific exceptions or route through "
                    "repro.resilience (run_isolated, run_with_retry)"))
                continue
            blanket = [name for name in _caught_names(handler.type)
                       if name in _BLANKET]
            if blanket:
                findings.append(self.finding(
                    path, handler,
                    f"blanket `except {blanket[0]}` outside "
                    "repro/resilience/ — catch the specific exceptions "
                    "you can handle, or route the failure through "
                    "repro.resilience"))
        return findings
