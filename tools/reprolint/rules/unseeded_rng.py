"""no-unseeded-rng: randomness flows through explicitly-seeded Generators.

Bit-identical serial/parallel/recovered runs (the PR 1/3 invariant) are
only provable when every random draw is tied to an explicit seed that
the call site owns.  Global-state RNGs break that two ways: the legacy
``np.random.*`` functions and the stdlib :mod:`random` module draw from
hidden process-wide state (which forked pool workers *share the clone
of*, silently correlating "independent" chunks), and an argumentless
``np.random.default_rng()`` reseeds from the OS entropy pool on every
call.

Allowed: constructing seeded generators (``np.random.default_rng(seed)``)
and naming the Generator/BitGenerator types (annotations, isinstance).
"""

from __future__ import annotations

import ast

from ..engine import Finding, Rule, iter_nodes

#: np.random attributes that are part of the explicit-Generator API.
ALLOWED_NP_RANDOM = frozenset({
    "Generator", "default_rng", "SeedSequence", "BitGenerator",
    "MT19937", "PCG64", "PCG64DXSM", "Philox", "SFC64",
})


def _alias_tables(tree: ast.Module):
    """(numpy aliases, numpy.random aliases, stdlib random aliases)."""
    numpy_aliases: set[str] = set()
    np_random_aliases: set[str] = set()
    stdlib_random_aliases: set[str] = set()
    for node in iter_nodes(tree, ast.Import):
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "numpy":
                numpy_aliases.add(bound)
            elif alias.name == "numpy.random" and alias.asname:
                np_random_aliases.add(alias.asname)
            elif alias.name == "numpy.random":
                numpy_aliases.add("numpy")
            elif alias.name == "random":
                stdlib_random_aliases.add(bound)
    return numpy_aliases, np_random_aliases, stdlib_random_aliases


def _np_random_attr(node: ast.Attribute, numpy_aliases: set[str],
                    np_random_aliases: set[str]) -> bool:
    """Is ``node`` an ``<np>.random.<x>`` or ``<npr>.<x>`` access?"""
    value = node.value
    if (isinstance(value, ast.Attribute) and value.attr == "random"
            and isinstance(value.value, ast.Name)
            and value.value.id in numpy_aliases):
        return True
    return isinstance(value, ast.Name) and value.id in np_random_aliases


class UnseededRngRule(Rule):
    rule_id = "no-unseeded-rng"
    description = ("legacy global-state RNG (np.random.*, stdlib random) "
                   "or an argumentless default_rng()")
    applies_to = ("src/repro",)

    def visit(self, tree: ast.Module, source: str,
              path: str) -> list[Finding]:
        numpy_aliases, np_random_aliases, stdlib_aliases = \
            _alias_tables(tree)
        findings = []

        for node in iter_nodes(tree, ast.ImportFrom):
            if node.module == "random" and node.level == 0:
                findings.append(self.finding(
                    path, node,
                    "stdlib `random` draws from hidden process-global "
                    "state — pass an explicitly seeded "
                    "np.random.Generator instead"))
            elif node.module in ("numpy.random", "numpy"):
                bad = [alias.name for alias in node.names
                       if alias.name not in ALLOWED_NP_RANDOM
                       and alias.name != "random"]
                if node.module == "numpy.random" and bad:
                    findings.append(self.finding(
                        path, node,
                        f"legacy numpy.random import ({', '.join(bad)}) — "
                        "use an explicitly seeded np.random.Generator"))
                elif node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            np_random_aliases.add(
                                alias.asname or alias.name)

        for node in iter_nodes(tree, ast.Attribute):
            if not _np_random_attr(node, numpy_aliases, np_random_aliases):
                continue
            if node.attr not in ALLOWED_NP_RANDOM:
                findings.append(self.finding(
                    path, node,
                    f"np.random.{node.attr} uses the legacy global RNG — "
                    "draw from an explicitly seeded np.random.Generator "
                    "passed in by the caller"))

        for node in iter_nodes(tree, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr == "default_rng"
                    and _np_random_attr(func, numpy_aliases,
                                        np_random_aliases)
                    and not node.args and not node.keywords):
                findings.append(self.finding(
                    path, node,
                    "default_rng() without a seed draws fresh OS entropy "
                    "— every run differs; pass the seed explicitly"))
            elif (isinstance(func, ast.Attribute)
                  and isinstance(func.value, ast.Name)
                  and func.value.id in stdlib_aliases):
                findings.append(self.finding(
                    path, node,
                    f"random.{func.attr} draws from hidden process-global "
                    "state — pass an explicitly seeded "
                    "np.random.Generator instead"))

        findings.sort(key=Finding.sort_key)
        return findings
