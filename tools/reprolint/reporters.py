"""Finding renderers: one for humans, one for machines.

The JSON document is the CI artifact: the pytest gate
(``tests/reprolint/test_reprolint.py``) and any external consumer read
the same shape ``python -m tools.reprolint --json`` prints, so a local
run and the CI run can never disagree about what was found.
"""

from __future__ import annotations

import json

from .engine import Finding, RunResult

#: Bumped when the JSON shape changes incompatibly.
JSON_VERSION = 1


def _finding_dict(finding: Finding) -> dict:
    return {
        "rule": finding.rule_id,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
        "suppressed": finding.suppressed,
    }


def render_json(result: RunResult) -> str:
    document = {
        "version": JSON_VERSION,
        "files_scanned": result.files_scanned,
        "findings": [_finding_dict(f) for f in result.findings],
        "suppressed": [_finding_dict(f) for f in result.suppressed],
        "suppressed_count": len(result.suppressed),
    }
    return json.dumps(document, indent=2, sort_keys=False)


def render_text(result: RunResult) -> str:
    lines = []
    for finding in result.findings:
        lines.append(f"FAIL: [{finding.rule_id}] {finding.path}:"
                     f"{finding.line}:{finding.col}: {finding.message}")
    summary = (f"{len(result.findings)} finding(s), "
               f"{len(result.suppressed)} suppressed, "
               f"{result.files_scanned} file(s) scanned")
    if result.findings:
        lines.append(summary)
    else:
        lines.append(f"reprolint clean: {summary}")
    return "\n".join(lines)
