"""reprolint — the repo's unified AST-based static-analysis suite.

One shared parse and tree walk per file, a plugin :class:`Check`
protocol, path-scoped allowlists, inline
``# reprolint: disable=<rule>`` suppressions, and text/JSON reporters
behind ``python -m tools.reprolint``.  The rules encode invariants the
runtime tests cannot fully cover — exception containment, single-point
backend dispatch, pickle-safe exception state, explicit RNG seeding,
clock-free compute, float32 shader-path discipline, and no mutable
defaults.  See ``docs/static_analysis.md`` for the catalogue.
"""

from __future__ import annotations

from .config import Config, load_config
from .engine import (AstCache, Check, Finding, Rule, RunResult, iter_nodes,
                     run)
from .reporters import render_json, render_text
from .rules import ALL_RULES, all_rules, resolve_rules

__all__ = [
    "ALL_RULES",
    "AstCache",
    "Check",
    "Config",
    "Finding",
    "Rule",
    "RunResult",
    "all_rules",
    "iter_nodes",
    "load_config",
    "render_json",
    "render_text",
    "resolve_rules",
    "run",
]
