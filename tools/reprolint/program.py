"""Whole-program analysis tier: symbol table, import graph, call graph.

The per-file tier (one parse, one walk, many rules) cannot see that a
config field never reaches the cache key, that a ``maybe_inject`` site
is undocumented, or that an attribute is mutated from both sides of the
asyncio/executor boundary — those are *cross-module* properties.  This
module builds the project-wide view the program-tier rules
(:mod:`tools.reprolint.rules.cache_key` and friends) query:

:class:`ModuleInfo`
    One parsed module: its dotted name, tree, top-level classes /
    functions / assignments, and resolved imports.
:class:`ProgramIndex`
    All modules under ``<root>/src`` keyed by dotted name, with

    * a symbol resolver (:meth:`ProgramIndex.resolve_symbol`) that
      follows import chains — including re-exports through package
      ``__init__`` modules — to the defining module,
    * a cross-module class-hierarchy walk (:meth:`ProgramIndex.derives_from`),
    * an approximate call graph (:meth:`ProgramIndex.call_graph`):
      nodes are ``module:qualname`` strings; an edge is either resolved
      (``self.m()`` to the same class, bare/dotted names through the
      symbol table) or a name-match (``other.m()`` recorded as ``~m``,
      expandable via :meth:`ProgramIndex.named_callees`).

Like the per-file AST cache, the index is memoized: :func:`get_index`
rebuilds only when a source file's mtime set changes, so repeated
``run()`` calls (the test-suite pattern) parse the program once.

Everything here is *approximate by design* — attribute calls on
non-``self`` receivers resolve by method name, dynamic dispatch is
invisible — which is the right trade for a lint tier: the rules built
on top treat unresolvable constructs conservatively and every verdict
is waivable in ``pyproject.toml``.
"""

from __future__ import annotations

import ast
import builtins
import os
from dataclasses import dataclass, field

from .engine import collect_files, iter_nodes

#: Builtin exception names; used by resolution clients to tell
#: "unresolved because builtin" from "unresolved because dynamic".
BUILTIN_EXCEPTIONS = frozenset(
    name for name in dir(builtins)
    if isinstance(getattr(builtins, name), type)
    and issubclass(getattr(builtins, name), BaseException))


def module_name_for(relpath: str) -> str | None:
    """Dotted module name for a root-relative ``src/`` path, or None."""
    if not relpath.startswith("src/") or not relpath.endswith(".py"):
        return None
    parts = relpath[len("src/"):-len(".py")].split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else None


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@dataclass
class ModuleInfo:
    """One parsed module and its top-level symbol table."""

    name: str
    path: str                      # root-relative, posix separators
    tree: ast.Module
    source: str
    is_package: bool
    classes: dict[str, ast.ClassDef] = field(default_factory=dict)
    functions: dict[str, ast.AST] = field(default_factory=dict)
    assigns: dict[str, ast.AST] = field(default_factory=dict)
    assign_nodes: dict[str, ast.AST] = field(default_factory=dict)
    imports: dict[str, str] = field(default_factory=dict)  # local -> fq
    imported_modules: set[str] = field(default_factory=set)

    def collect(self) -> None:
        for node in self.tree.body:
            if isinstance(node, ast.ClassDef):
                self.classes[node.name] = node
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = node
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.assigns[target.id] = node.value
                        self.assign_nodes[target.id] = node
            elif (isinstance(node, ast.AnnAssign) and node.value is not None
                  and isinstance(node.target, ast.Name)):
                self.assigns[node.target.id] = node.value
                self.assign_nodes[node.target.id] = node
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.imports[alias.asname] = alias.name
                    else:
                        top = alias.name.split(".")[0]
                        self.imports[top] = top
                    self.imported_modules.add(alias.name)
            elif isinstance(node, ast.ImportFrom):
                base = self._from_base(node)
                if base is None:
                    continue
                self.imported_modules.add(base)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.imports[local] = (base + "." + alias.name
                                           if base else alias.name)

    def _from_base(self, node: ast.ImportFrom) -> str | None:
        """Absolute module a ``from X import ...`` refers to."""
        if node.level == 0:
            return node.module
        # relative: resolve against this module's package
        pkg_parts = self.name.split(".")
        if not self.is_package:
            pkg_parts = pkg_parts[:-1]
        drop = node.level - 1
        if drop > len(pkg_parts):
            return None
        base_parts = pkg_parts[:len(pkg_parts) - drop]
        if node.module:
            base_parts.append(node.module)
        return ".".join(base_parts)


class ProgramIndex:
    """The project-wide symbol table / import graph / call graph."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.modules: dict[str, ModuleInfo] = {}
        self.by_path: dict[str, ModuleInfo] = {}
        self._call_graph: dict[str, set[str]] | None = None
        self._defs_by_name: dict[str, set[str]] | None = None
        self._fn_nodes: dict[str, ast.AST] = {}

    # -- construction ----------------------------------------------------

    @classmethod
    def build(cls, root: str, files: list[str]) -> "ProgramIndex":
        index = cls(root)
        for abspath in files:
            rel = os.path.relpath(abspath, root).replace(os.sep, "/")
            name = module_name_for(rel)
            if name is None:
                continue
            try:
                with open(abspath, encoding="utf-8") as fh:
                    source = fh.read()
                tree = ast.parse(source, filename=abspath)
            except (SyntaxError, ValueError, UnicodeDecodeError):
                continue  # the per-file tier reports the syntax error
            info = ModuleInfo(name=name, path=rel, tree=tree, source=source,
                              is_package=rel.endswith("/__init__.py"))
            info.collect()
            index.modules[name] = info
            index.by_path[rel] = info
        return index

    # -- symbol resolution -----------------------------------------------

    def resolve_symbol(self, module: str, dotted: str,
                       _seen: frozenset = frozenset()
                       ) -> tuple[str, str] | None:
        """Follow ``dotted`` from ``module`` to ``(defining_module, name)``.

        Chases import aliases and package re-exports; returns None for
        externals (stdlib, numpy), builtins, and anything dynamic.
        """
        info = self.modules.get(module)
        if info is None or (module, dotted) in _seen:
            return None
        _seen = _seen | {(module, dotted)}
        head, _, rest = dotted.partition(".")
        if head in info.imports:
            return self._resolve_fq(info.imports[head], rest, _seen)
        if not rest:
            if (head in info.classes or head in info.functions
                    or head in info.assigns):
                return (module, head)
        elif info.is_package and module + "." + head in self.modules:
            return self.resolve_symbol(module + "." + head, rest, _seen)
        return None

    def _resolve_fq(self, fq: str, rest: str,
                    _seen: frozenset) -> tuple[str, str] | None:
        """Resolve a fully-qualified target plus a trailing attribute
        path; ``fq`` may name a module or a symbol inside one."""
        if fq in self.modules:
            if not rest:
                return None  # a bare module is not a symbol
            return self.resolve_symbol(fq, rest, _seen)
        mod, _, sym = fq.rpartition(".")
        if mod and mod in self.modules:
            dotted = sym + ("." + rest if rest else "")
            return self.resolve_symbol(mod, dotted, _seen)
        return None

    def lookup_class(self, module: str,
                     dotted: str) -> tuple[str, ast.ClassDef] | None:
        """Resolve ``dotted`` to a ClassDef, or None."""
        resolved = self.resolve_symbol(module, dotted)
        if resolved is None:
            return None
        mod, name = resolved
        node = self.modules[mod].classes.get(name)
        return (mod, node) if node is not None else None

    # -- class hierarchy -------------------------------------------------

    def derives_from(self, module: str, cls: ast.ClassDef,
                     target: str, _seen: frozenset = frozenset()) -> bool:
        """True when ``cls`` (defined in ``module``) has ``target``
        (``"pkg.mod.Class"``) anywhere in its resolvable base chain."""
        key = (module, cls.name)
        if key in _seen:
            return False
        _seen = _seen | {key}
        target_mod, _, target_name = target.rpartition(".")
        for base in cls.bases:
            name = dotted_name(base)
            if name is None:
                continue
            resolved = self.resolve_symbol(module, name)
            if resolved is None:
                continue
            if resolved == (target_mod, target_name):
                return True
            base_cls = self.modules[resolved[0]].classes.get(resolved[1])
            if base_cls is not None and self.derives_from(
                    resolved[0], base_cls, target, _seen):
                return True
        return False

    def mro_classes(self, module: str, cls: ast.ClassDef
                    ) -> list[tuple[str, ast.ClassDef]]:
        """``cls`` and its resolvable ancestors, nearest first
        (approximate linearization: depth-first, deduplicated)."""
        out: list[tuple[str, ast.ClassDef]] = []
        seen: set[tuple[str, str]] = set()

        def walk(mod: str, node: ast.ClassDef) -> None:
            key = (mod, node.name)
            if key in seen:
                return
            seen.add(key)
            out.append((mod, node))
            for base in node.bases:
                name = dotted_name(base)
                if name is None:
                    continue
                found = self.lookup_class(mod, name)
                if found is not None:
                    walk(*found)

        walk(module, cls)
        return out

    def class_attr(self, module: str, cls: ast.ClassDef,
                   attr: str) -> tuple[str, ast.AST] | None:
        """First class-body assignment of ``attr`` along the MRO:
        ``(defining_module, value_expr)``."""
        for mod, node in self.mro_classes(module, cls):
            for stmt in node.body:
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name) and target.id == attr:
                            return (mod, stmt.value)
                elif (isinstance(stmt, ast.AnnAssign)
                      and isinstance(stmt.target, ast.Name)
                      and stmt.target.id == attr
                      and stmt.value is not None):
                    return (mod, stmt.value)
        return None

    def class_method(self, module: str, cls: ast.ClassDef,
                     name: str) -> tuple[str, ast.AST] | None:
        """First def of ``name`` along the MRO: ``(defining_module, def)``."""
        for mod, node in self.mro_classes(module, cls):
            for stmt in node.body:
                if (isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and stmt.name == name):
                    return (mod, stmt)
        return None

    # -- constant evaluation ---------------------------------------------

    def eval_string_set(self, module: str, node: ast.AST,
                        _seen: frozenset = frozenset()) -> frozenset | None:
        """Evaluate an expression to a frozenset of strings, following
        name references and ``|`` unions; None when not statically a
        string set."""
        if isinstance(node, (ast.Set, ast.List, ast.Tuple)):
            out = []
            for elt in node.elts:
                if (isinstance(elt, ast.Constant)
                        and isinstance(elt.value, str)):
                    out.append(elt.value)
                else:
                    return None
            return frozenset(out)
        if (isinstance(node, ast.Call)
                and dotted_name(node.func) in ("frozenset", "set")
                and len(node.args) <= 1 and not node.keywords):
            if not node.args:
                return frozenset()
            return self.eval_string_set(module, node.args[0], _seen)
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            left = self.eval_string_set(module, node.left, _seen)
            right = self.eval_string_set(module, node.right, _seen)
            if left is None or right is None:
                return None
            return left | right
        name = dotted_name(node)
        if name is not None:
            if (module, name) in _seen:
                return None
            resolved = self.resolve_symbol(module, name)
            if resolved is None:
                return None
            mod, sym = resolved
            value = self.modules[mod].assigns.get(sym)
            if value is None:
                return None
            return self.eval_string_set(mod, value,
                                        _seen | {(module, name)})
        return None

    # -- approximate call graph ------------------------------------------

    def _build_call_graph(self) -> None:
        """Nodes ``module:qualname``; edges to resolved nodes or to
        ``~name`` name-match placeholders."""
        graph: dict[str, set[str]] = {}
        defs_by_name: dict[str, set[str]] = {}

        def register(fq: str, node: ast.AST) -> None:
            self._fn_nodes[fq] = node
            short = fq.rsplit(".", 1)[-1].rsplit(":", 1)[-1]
            defs_by_name.setdefault(short, set()).add(fq)

        def visit_fn(module: ModuleInfo, fq: str, fn: ast.AST,
                     cls: ast.ClassDef | None) -> None:
            register(fq, fn)
            edges = graph.setdefault(fq, set())
            method_names = set()
            if cls is not None:
                method_names = {
                    s.name for s in cls.body
                    if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef))}

            def scan(node: ast.AST) -> None:
                for child in ast.iter_child_nodes(node):
                    if isinstance(child, (ast.FunctionDef,
                                          ast.AsyncFunctionDef)):
                        visit_fn(module, fq + "." + child.name, child, None)
                        continue
                    if isinstance(child, ast.Call):
                        self._add_call_edge(module, child, cls, method_names,
                                            edges)
                    scan(child)

            scan(fn)

        for module in self.modules.values():
            for fname, fn in module.functions.items():
                visit_fn(module, f"{module.name}:{fname}", fn, None)
            for cname, cls in module.classes.items():
                for stmt in cls.body:
                    if isinstance(stmt, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        visit_fn(module, f"{module.name}:{cname}.{stmt.name}",
                                 stmt, cls)
        self._call_graph = graph
        self._defs_by_name = defs_by_name

    def _add_call_edge(self, module: ModuleInfo, call: ast.Call,
                       cls: ast.ClassDef | None, method_names: set,
                       edges: set[str]) -> None:
        func = call.func
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self" and cls is not None):
            if func.attr in method_names:
                edges.add(f"{module.name}:{cls.name}.{func.attr}")
            else:
                edges.add("~" + func.attr)  # inherited or dynamic
            return
        name = dotted_name(func)
        if name is not None:
            resolved = self.resolve_symbol(module.name, name)
            if resolved is not None:
                mod, sym = resolved
                if sym in self.modules[mod].functions:
                    edges.add(f"{mod}:{sym}")
                    return
                if sym in self.modules[mod].classes:
                    return  # constructor: not a call-graph edge
            if "." not in name and name in module.functions:
                edges.add(f"{module.name}:{name}")
                return
        if isinstance(func, ast.Attribute):
            edges.add("~" + func.attr)

    @property
    def call_graph(self) -> dict[str, set[str]]:
        if self._call_graph is None:
            self._build_call_graph()
        return self._call_graph

    def fn_node(self, fq: str) -> ast.AST | None:
        """The def node of a call-graph node id."""
        self.call_graph  # noqa: B018 - force build
        return self._fn_nodes.get(fq)

    def named_callees(self, name: str) -> set[str]:
        """Every def whose bare name matches a ``~name`` edge."""
        self.call_graph  # noqa: B018 - force build
        return set(self._defs_by_name.get(name, ()))

    def walk_module(self, info: ModuleInfo, *types: type) -> list[ast.AST]:
        """Memoized walk of an indexed module (shares the engine's
        per-tree walk cache with the per-file rules)."""
        return iter_nodes(info.tree, *types)


# --------------------------------------------------------------------------
# Cross-run memoization

_INDEX_CACHE: dict[str, tuple[frozenset, ProgramIndex]] = {}


def get_index(root: str) -> ProgramIndex:
    """The program index for ``root``, rebuilt only when the ``src/``
    file set (paths + mtimes) changes — the cross-file analogue of the
    per-file :class:`~tools.reprolint.engine.AstCache`."""
    files = collect_files(["src"], root)
    try:
        key = frozenset(
            (path, os.path.getmtime(path)) for path in files)
    except OSError:
        key = None
    cached = _INDEX_CACHE.get(root)
    if cached is not None and key is not None and cached[0] == key:
        return cached[1]
    index = ProgramIndex.build(root, files)
    if key is not None:
        _INDEX_CACHE[root] = (key, index)
    return index
