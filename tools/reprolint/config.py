"""reprolint configuration: scan roots and per-rule path allowlists.

Configuration lives in ``pyproject.toml`` under ``[tool.reprolint]``::

    [tool.reprolint]
    roots = ["src/repro", "tools", "benchmarks", "examples"]

    [tool.reprolint.allow]
    dtype-discipline = ["src/repro/gpu/counters.py"]

    [tool.reprolint.rule.cache-key-soundness]
    execution-knobs = ["n_workers", "max_retries", "chunk_timeout_s"]

``roots`` are the directories scanned when no explicit paths are given
(tests are deliberately absent: fixture files under
``tests/reprolint/fixtures/`` violate rules on purpose).  ``allow``
maps a rule id to extra exempt path prefixes, merged with the rule's
built-in ``allowed_paths``.  ``rule.<id>`` tables hold per-rule
options for the whole-program tier — most importantly the explicit
execution-knob exclusion list the ``cache-key-soundness`` rule audits
code-side knob declarations against.

When ``root`` has no ``pyproject.toml`` (the unit tests lint synthetic
trees under ``tmp_path``) or the interpreter predates :mod:`tomllib`,
the built-in defaults apply.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Mapping

try:
    import tomllib
except ImportError:  # Python < 3.11: fall back to the defaults below.
    tomllib = None

#: Directories scanned by default, relative to the repo root.  Fixture
#: trees under tests/ are excluded by construction.
DEFAULT_ROOTS: tuple[str, ...] = (
    "src/repro", "tools", "benchmarks", "examples")


@dataclass(frozen=True)
class Config:
    roots: tuple[str, ...] = DEFAULT_ROOTS
    allow: Mapping[str, tuple[str, ...]] = field(default_factory=dict)
    #: Per-rule option tables from ``[tool.reprolint.rule.<id>]`` —
    #: the program-tier rules read their knobs (e.g. the declared
    #: execution-knob exclusion list of ``cache-key-soundness``) here.
    options: Mapping[str, Mapping[str, object]] = field(default_factory=dict)


def load_config(root: str) -> Config:
    """The ``[tool.reprolint]`` table of ``root``'s pyproject, or defaults."""
    path = os.path.join(root, "pyproject.toml")
    if tomllib is None or not os.path.isfile(path):
        return Config()
    with open(path, "rb") as fh:
        try:
            data = tomllib.load(fh)
        except tomllib.TOMLDecodeError:
            return Config()
    table = data.get("tool", {}).get("reprolint", {})
    roots = tuple(table.get("roots", DEFAULT_ROOTS))
    allow = {rule_id: tuple(prefixes)
             for rule_id, prefixes in table.get("allow", {}).items()}
    options = {rule_id: dict(opts)
               for rule_id, opts in table.get("rule", {}).items()}
    return Config(roots=roots, allow=allow, options=options)
