"""reprolint configuration: scan roots and per-rule path allowlists.

Configuration lives in ``pyproject.toml`` under ``[tool.reprolint]``::

    [tool.reprolint]
    roots = ["src/repro", "tools", "benchmarks", "examples"]

    [tool.reprolint.allow]
    dtype-discipline = ["src/repro/gpu/counters.py"]

``roots`` are the directories scanned when no explicit paths are given
(tests are deliberately absent: fixture files under
``tests/reprolint/fixtures/`` violate rules on purpose).  ``allow``
maps a rule id to extra exempt path prefixes, merged with the rule's
built-in ``allowed_paths``.

When ``root`` has no ``pyproject.toml`` (the unit tests lint synthetic
trees under ``tmp_path``) or the interpreter predates :mod:`tomllib`,
the built-in defaults apply.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Mapping

try:
    import tomllib
except ImportError:  # Python < 3.11: fall back to the defaults below.
    tomllib = None

#: Directories scanned by default, relative to the repo root.  Fixture
#: trees under tests/ are excluded by construction.
DEFAULT_ROOTS: tuple[str, ...] = (
    "src/repro", "tools", "benchmarks", "examples")


@dataclass(frozen=True)
class Config:
    roots: tuple[str, ...] = DEFAULT_ROOTS
    allow: Mapping[str, tuple[str, ...]] = field(default_factory=dict)


def load_config(root: str) -> Config:
    """The ``[tool.reprolint]`` table of ``root``'s pyproject, or defaults."""
    path = os.path.join(root, "pyproject.toml")
    if tomllib is None or not os.path.isfile(path):
        return Config()
    with open(path, "rb") as fh:
        try:
            data = tomllib.load(fh)
        except tomllib.TOMLDecodeError:
            return Config()
    table = data.get("tool", {}).get("reprolint", {})
    roots = tuple(table.get("roots", DEFAULT_ROOTS))
    allow = {rule_id: tuple(prefixes)
             for rule_id, prefixes in table.get("allow", {}).items()}
    return Config(roots=roots, allow=allow)
