#!/usr/bin/env python
"""DEPRECATED — use ``python -m tools.reprolint --rules blanket-except``.

Thin wrapper over reprolint's AST-accurate ``blanket-except`` rule
(``tools/reprolint/rules/blanket_except.py``).  The wrapper (and its
``scan()`` API) is kept one more release so old invocations keep
working, but the canonical entry point is now reprolint itself, which
also runs the whole-program tier this wrapper cannot::

    python -m tools.reprolint --rules blanket-except
"""

from __future__ import annotations

import os
import sys

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(TOOLS_DIR)
if REPO_ROOT not in sys.path:
    sys.path.insert(0, REPO_ROOT)

from tools.reprolint import run  # noqa: E402  (path set up above)

RULE_ID = "blanket-except"


def _line_text(path: str, lineno: int) -> str:
    with open(path, encoding="utf-8") as fh:
        for number, line in enumerate(fh, start=1):
            if number == lineno:
                return line.strip()
    return ""


def scan(root: str = REPO_ROOT) -> list[str]:
    """All violations under ``root``'s ``src/repro`` tree, as
    ``path:line: text`` strings (empty when containment holds)."""
    result = run(paths=["src/repro"], root=root, rules=[RULE_ID])
    return [f"{f.path}:{f.line}: "
            f"{_line_text(os.path.join(root, f.path), f.line)}"
            for f in result.findings]


def main() -> int:
    print("note: tools/check_excepts.py is deprecated; run "
          "`python -m tools.reprolint --rules blanket-except` instead",
          file=sys.stderr)
    problems = scan()
    for problem in problems:
        print(f"FAIL: blanket except outside repro/resilience/ — "
              f"{problem}")
    if problems:
        print("catch the specific exceptions you can handle, or route the "
              "failure through repro.resilience (run_isolated, "
              "run_with_retry)")
        return 1
    print("exception containment holds: no bare/blanket excepts outside "
          "repro/resilience/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
