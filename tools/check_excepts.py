#!/usr/bin/env python
"""Except lint — blanket exception handling stays in the resilience layer.

Swallowing arbitrary exceptions hides real bugs behind "handled"
failures, and the fault-tolerance work made the temptation permanent:
once retry/recovery wrappers exist, it is one lazy edit away to catch
``Exception`` at a call site instead of routing the failure through
:mod:`repro.resilience`.  This checker keeps the containment: it fails
if a bare ``except:`` or a blanket ``except Exception`` /
``except BaseException`` clause appears in library code outside
``src/repro/resilience/`` — the one package whose *job* is absorbing
arbitrary failures.  Everywhere else, catch the specific exceptions you
can actually handle.

Run by ``tests/test_excepts_lint.py`` so it gates CI; run directly for
a human-readable report::

    python tools/check_excepts.py
"""

from __future__ import annotations

import os
import re
import sys

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(TOOLS_DIR)

#: A bare ``except:`` or a clause catching ``Exception`` /
#: ``BaseException`` (alone or anywhere in a tuple).
PATTERN = re.compile(
    r"\bexcept\s*(:|(\(?[^:]*\b(?:Exception|BaseException)\b[^:]*\)?\s*:))")

#: Directory (relative to the scanned root) whose files may blanket-catch.
ALLOWED_DIR = os.path.join("src", "repro", "resilience")


def scan_file(path: str) -> list[tuple[int, str]]:
    """(line number, line) pairs of blanket excepts in one file."""
    hits = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            code = line.split("#", 1)[0]
            if PATTERN.search(code):
                hits.append((lineno, line.rstrip()))
    return hits


def scan(root: str = REPO_ROOT) -> list[str]:
    """All violations under ``root``'s ``src/repro`` tree, as
    ``path:line: text`` strings (empty when containment holds)."""
    problems = []
    src = os.path.join(root, "src", "repro")
    allowed = os.path.join(root, ALLOWED_DIR)
    for dirpath, dirnames, filenames in os.walk(src):
        dirnames[:] = [d for d in dirnames
                       if not d.startswith((".", "_"))
                       and not d.endswith(".egg-info")]
        if os.path.commonpath([dirpath, allowed]) == allowed:
            continue
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            for lineno, line in scan_file(path):
                rel = os.path.relpath(path, root)
                problems.append(f"{rel}:{lineno}: {line.strip()}")
    return problems


def main() -> int:
    problems = scan()
    for problem in problems:
        print(f"FAIL: blanket except outside repro/resilience/ — "
              f"{problem}")
    if problems:
        print("catch the specific exceptions you can handle, or route the "
              "failure through repro.resilience (run_isolated, "
              "run_with_retry)")
        return 1
    print("exception containment holds: no bare/blanket excepts outside "
          "repro/resilience/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
