"""Record the pair-reuse acceptance measurement to ``BENCH_morph.json``.

Measures the reference-backend morphological stage (``mei_reference``)
with the historical all-pairs loop and with the shift-reuse engine at
radius 2, takes the best of a few repeats of each, and writes the
speedup plus the engine's reuse accounting to ``BENCH_morph.json`` at
the repository root.  The PR's acceptance bar is a >= 2x measured
speedup with bit-identical output (the latter is asserted here and
pinned by the test suite).

Run from the repository root::

    PYTHONPATH=src python -m tools.bench_record
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.core.mei import mei_reference

LINES, SAMPLES, BANDS = 96, 96, 32
RADIUS = 2
REPEATS = 3
SEED = 20060815


def _best_of(fn, repeats: int = REPEATS):
    best_s, out = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        out = fn()
        best_s = min(best_s, time.perf_counter() - start)
    return best_s, out


def measure() -> dict:
    """Run the measurement and return the record dict."""
    cube = np.random.default_rng(SEED).uniform(
        0.05, 1.0, size=(LINES, SAMPLES, BANDS))
    pairs_s, pairs = _best_of(
        lambda: mei_reference(cube, RADIUS, method="pairs"))
    shift_s, shift = _best_of(
        lambda: mei_reference(cube, RADIUS, method="shift"))
    np.testing.assert_array_equal(shift.mei, pairs.mei)
    np.testing.assert_array_equal(shift.cumulative, pairs.cumulative)

    stats = shift.stats
    return {
        "bench": "morphological stage, reference backend, "
                 "all-pairs vs shift-reuse",
        "cube": [LINES, SAMPLES, BANDS],
        "radius": RADIUS,
        "repeats": REPEATS,
        "pairs_wall_s": round(pairs_s, 6),
        "shift_wall_s": round(shift_s, 6),
        "speedup": round(pairs_s / shift_s, 3),
        "bit_identical": True,
        "reuse": stats.as_counters(),
    }


def main() -> None:
    record = measure()
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    path = os.path.join(root, "BENCH_morph.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"speedup {record['speedup']}x "
          f"(pairs {record['pairs_wall_s']}s -> "
          f"shift {record['shift_wall_s']}s, "
          f"reuse ratio {record['reuse']['reuse_ratio']:.2f})")
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
