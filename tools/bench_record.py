"""Record acceptance measurements to ``BENCH_*.json`` at the repo root.

Two targets:

``morph`` (the default, preserving the historical invocation)
    Measures the reference-backend morphological stage
    (``mei_reference``) with the historical all-pairs loop and with the
    shift-reuse engine at radius 2, takes the best of a few repeats of
    each, and writes the speedup plus the engine's reuse accounting to
    ``BENCH_morph.json``.  The acceptance bar is a >= 2x measured
    speedup with bit-identical output (asserted here and pinned by the
    test suite).

``serving``
    Drives an in-process :class:`~repro.serving.AMCServer` with 1, 4
    and 16 concurrent clients, recording jobs/sec plus cold vs
    cache-hit latency to ``BENCH_serving.json``.  The warm pass is
    asserted to add *zero* pipeline executions with digests identical
    to the cold pass — the serving acceptance criterion, measured.

``workloads``
    Submits one job per registered workload (amc, sam, cem, rx, pca)
    through an in-process server — cold, then resubmitted — recording
    per-workload cold vs cache-hit latency to ``BENCH_workloads.json``.
    Asserts the warm pass adds zero pipeline executions per workload
    with identical digests, and that the five keys never collided
    (exactly five executions total for ten submissions).

``recovery``
    Measures the durable tier: per-job cost of journaling + payload
    spill + disk write-through (durable vs plain server, same jobs),
    journal replay time against journal length, restart-recovery time
    for a server with completed history, and the warm disk-cache hit
    latency after a restart.  Asserts the recovery properties inside
    the measurement: every replayed job is terminal without
    re-execution and a post-restart resubmission is a disk hit with
    the original digest.  Written to ``BENCH_recovery.json``.  The
    non-durable serving path is unchanged by the durability feature
    (``state_dir=None`` servers build no journal — the only added work
    is `is None` checks), which keeps ``BENCH_serving.json`` the
    regression reference for the historical path.

``lint``
    Times the reprolint analyzer itself on the real repository: the
    per-file tier alone, the whole-program tier cold (index built from
    scratch) and warm (memoized index), and the full two-tier run that
    CI gates on.  Asserts inside the measurement that every pass comes
    back clean and that the two-tier run fits the 10-second acceptance
    budget.  Written to ``BENCH_LINT.json``.

``fusion``
    Measures end-to-end ``run_amc`` on the GPU backend with the fused
    fast paths (``optimize="fuse"``, the default) against the
    historical ``optimize="none"`` oracle at SE radii 1-3, asserting
    sha256 bit identity and the >= 1.5x acceptance bar at every
    radius, with the serial reference backend and the stream
    compiler's pass fusion (launch counts, modeled time) as supporting
    rows.  Written to ``BENCH_fusion.json``.

Run from the repository root::

    PYTHONPATH=src python -m tools.bench_record [morph|serving|workloads|recovery|lint|fusion]
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import time

import numpy as np

from repro.core.mei import mei_reference

LINES, SAMPLES, BANDS = 96, 96, 32
RADIUS = 2
REPEATS = 3
SEED = 20060815

#: Concurrency levels of the serving measurement.
SERVING_CLIENTS = (1, 4, 16)


def _best_of(fn, repeats: int = REPEATS):
    best_s, out = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        out = fn()
        best_s = min(best_s, time.perf_counter() - start)
    return best_s, out


def measure() -> dict:
    """Run the measurement and return the record dict."""
    cube = np.random.default_rng(SEED).uniform(
        0.05, 1.0, size=(LINES, SAMPLES, BANDS))
    pairs_s, pairs = _best_of(
        lambda: mei_reference(cube, RADIUS, method="pairs"))
    shift_s, shift = _best_of(
        lambda: mei_reference(cube, RADIUS, method="shift"))
    np.testing.assert_array_equal(shift.mei, pairs.mei)
    np.testing.assert_array_equal(shift.cumulative, pairs.cumulative)

    stats = shift.stats
    return {
        "bench": "morphological stage, reference backend, "
                 "all-pairs vs shift-reuse",
        "cube": [LINES, SAMPLES, BANDS],
        "radius": RADIUS,
        "repeats": REPEATS,
        "pairs_wall_s": round(pairs_s, 6),
        "shift_wall_s": round(shift_s, 6),
        "speedup": round(pairs_s / shift_s, 3),
        "bit_identical": True,
        "reuse": stats.as_counters(),
    }


async def _serving_level(server, cube, clients: int) -> dict:
    """One concurrency level: cold pass, then the identical warm pass."""

    async def one_request(params):
        start = time.perf_counter()
        job = await server.submit(cube, params)
        await server.wait(job.job_id)
        return time.perf_counter() - start, job

    param_sets = [{"n_classes": 3 + i} for i in range(clients)]

    start = time.perf_counter()
    cold = await asyncio.gather(*(one_request(p) for p in param_sets))
    cold_wall = time.perf_counter() - start
    runs_after_cold = server.pipeline_runs

    start = time.perf_counter()
    warm = await asyncio.gather(*(one_request(p) for p in param_sets))
    warm_wall = time.perf_counter() - start

    # the acceptance criterion, measured: zero extra executions and
    # bit-identical digests on the warm pass
    assert server.pipeline_runs == runs_after_cold
    assert all(w.result_sha256 == c.result_sha256
               for (_, c), (_, w) in zip(cold, warm))

    def mean_ms(latencies):
        return round(1e3 * sum(latencies) / len(latencies), 3)

    return {
        "clients": clients,
        "cold_jobs_per_s": round(clients / cold_wall, 3),
        "cache_hit_jobs_per_s": round(clients / warm_wall, 3),
        "cold_latency_ms": mean_ms([s for s, _ in cold]),
        "cache_hit_latency_ms": mean_ms([s for s, _ in warm]),
        "pipeline_runs": runs_after_cold,
    }


def measure_serving() -> dict:
    """Run the serving throughput measurement; return the record dict."""
    from repro.hsi import SceneParams, generate_scene
    from repro.serving import AMCServer

    scene = generate_scene(SceneParams(lines=32, samples=32,
                                       band_count=32, seed=SEED % 9973,
                                       min_field=5))
    cube = scene.cube

    async def sweep():
        levels = []
        for clients in SERVING_CLIENTS:
            async with AMCServer(workers=2,
                                 queue_size=max(16, clients)) as server:
                levels.append(await _serving_level(server, cube, clients))
        return levels

    return {
        "bench": "serving throughput: jobs/sec and cold vs cache-hit "
                 "latency under concurrent clients",
        "cube": [32, 32, 32],
        "workers": 2,
        "zero_duplicate_executions": True,
        "levels": asyncio.run(sweep()),
    }


def measure_workloads() -> dict:
    """Per-workload cold vs cache-hit timing; return the record dict."""
    from repro.hsi import SceneParams, generate_scene
    from repro.serving import AMCServer
    from repro.workloads import get_workload, workload_names

    scene = generate_scene(SceneParams(lines=32, samples=32,
                                       band_count=32, seed=SEED % 9973,
                                       min_field=5))
    cube = scene.cube.as_bip()
    target = tuple(float(v) for v in
                   cube.reshape(-1, cube.shape[-1])[:16].mean(axis=0))

    def params_for(workload):
        params = {}
        if workload.requires_target:
            params["target"] = target
        if workload.name == "amc":
            params["n_classes"] = 4
        return params

    async def sweep():
        rows = []
        async with AMCServer(workers=1) as server:
            for name in workload_names():
                workload = get_workload(name)
                params = params_for(workload)

                async def one_pass():
                    start = time.perf_counter()
                    job = await server.submit(cube, params,
                                              workload=name)
                    status = await server.wait(job.job_id)
                    return time.perf_counter() - start, status

                runs_before = server.pipeline_runs
                cold_s, cold = await one_pass()
                assert server.pipeline_runs == runs_before + 1
                warm_s, warm = await one_pass()
                # the acceptance criterion, measured: the resubmission
                # is a pure cache hit with the cold result's bytes
                assert server.pipeline_runs == runs_before + 1
                assert warm.from_cache
                assert warm.result_sha256 == cold.result_sha256
                rows.append({
                    "workload": name,
                    "kind": workload.kind,
                    "cold_ms": round(1e3 * cold_s, 3),
                    "cache_hit_ms": round(1e3 * warm_s, 3),
                })
            total_runs = server.pipeline_runs
        # five workloads, one cube: the keys never collided
        assert total_runs == len(rows)
        return rows

    return {
        "bench": "per-workload serving latency: cold execution vs "
                 "content-addressed cache hit, one cube, all "
                 "registered workloads",
        "cube": [32, 32, 32],
        "workers": 1,
        "zero_duplicate_executions": True,
        "distinct_keys_per_workload": True,
        "workloads": asyncio.run(sweep()),
    }


#: Jobs per sweep and journal sizes of the recovery measurement.
RECOVERY_JOBS = 8
REPLAY_SIZES = (100, 1000)


def measure_recovery() -> dict:
    """Durable-tier cost and recovery timing; return the record dict."""
    import tempfile

    from repro.hsi import SceneParams, generate_scene
    from repro.serving import AMCServer, JobJournal

    scene = generate_scene(SceneParams(lines=32, samples=32,
                                       band_count=32, seed=SEED % 9973,
                                       min_field=5))
    cube = scene.cube

    def sweep(state_dir=None):
        async def go():
            async with AMCServer(workers=2,
                                 state_dir=state_dir) as server:
                start = time.perf_counter()
                for i in range(RECOVERY_JOBS):
                    job = await server.submit(cube, {"n_classes": 3 + i})
                    status = await server.wait(job.job_id)
                    assert status.state == "done"
                return time.perf_counter() - start
        return asyncio.run(go())

    sweep()                                  # warm pipelines and caches
    plain_s = min(sweep() for _ in range(REPEATS))
    durable_runs = []
    for _ in range(REPEATS):
        with tempfile.TemporaryDirectory() as state:
            durable_runs.append(sweep(state))
    durable_s = min(durable_runs)
    per_job_ms = 1e3 * (durable_s - plain_s) / RECOVERY_JOBS

    # journal replay scaling: synthetic queued/running/done histories
    replay = []
    for size in REPLAY_SIZES:
        with tempfile.TemporaryDirectory() as state:
            journal = JobJournal(state)
            states = ("queued", "running", "done")
            for seq in range(size):
                journal.append(states[seq % 3], job_id=seq // 3,
                               key=f"k{seq // 3}")
            journal.close()
            replay_s, report = _best_of(journal.replay)
            assert report.records == size
            replay.append({"records": size,
                           "replay_ms": round(1e3 * replay_s, 3)})

    # restart recovery: a server with completed history comes back with
    # every job terminal, and a resubmission is a pure disk-cache hit
    with tempfile.TemporaryDirectory() as state:
        async def first_life():
            async with AMCServer(workers=2, state_dir=state) as server:
                digests = []
                for i in range(RECOVERY_JOBS):
                    job = await server.submit(cube, {"n_classes": 3 + i})
                    await server.wait(job.job_id)
                    digests.append(job.result_sha256)
                return digests

        async def second_life():
            start = time.perf_counter()
            async with AMCServer(workers=2, state_dir=state) as server:
                restart_s = time.perf_counter() - start
                replayed = [server.status(i + 1)
                            for i in range(RECOVERY_JOBS)]
                hit_start = time.perf_counter()
                job = await server.submit(cube, {"n_classes": 3})
                await server.wait(job.job_id)
                hit_s = time.perf_counter() - hit_start
                # the acceptance criterion, measured: nothing
                # re-executed, the digest survived the restart
                assert server.pipeline_runs == 0
                assert job.from_cache
                return restart_s, hit_s, replayed, job

        digests = asyncio.run(first_life())
        restart_s, hit_s, replayed, resubmit = asyncio.run(second_life())
        assert all(r.state == "done" and r.recovered for r in replayed)
        assert [r.result_sha256 for r in replayed] == digests
        assert resubmit.result_sha256 == digests[0]

    return {
        "bench": "durable serving: journal+spill+disk-tier cost per "
                 "job, replay scaling, restart recovery and warm "
                 "disk-cache hits",
        "cube": [32, 32, 32],
        "jobs": RECOVERY_JOBS,
        "plain_wall_s": round(plain_s, 6),
        "durable_wall_s": round(durable_s, 6),
        "durable_cost_per_job_ms": round(per_job_ms, 3),
        "durable_overhead_pct": round(
            1e2 * (durable_s - plain_s) / plain_s, 1),
        "replay": replay,
        "restart_recovery_ms": round(1e3 * restart_s, 3),
        "disk_cache_hit_ms": round(1e3 * hit_s, 3),
        "recovered_without_reexecution": True,
        "digests_survive_restart": True,
    }


#: The whole-program acceptance budget, seconds (see ISSUE gate and
#: ``tests/reprolint/test_program_rules.py``).
LINT_BUDGET_S = 10.0


def measure_lint() -> dict:
    """Time the analyzer tiers on the repo; return the record dict."""
    from tools.reprolint import all_rules, run
    from tools.reprolint.program import _INDEX_CACHE

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    file_ids = [r.rule_id for r in all_rules() if r.tier == "file"]
    program_ids = [r.rule_id for r in all_rules() if r.tier == "program"]

    def clean(result):
        assert result.findings == [], [
            f"{f.rule_id} {f.path}:{f.line}" for f in result.findings]
        return result

    per_file_s, per_file = _best_of(
        lambda: clean(run(root=root, rules=file_ids)))

    def program_cold():
        _INDEX_CACHE.clear()
        return clean(run(root=root, rules=program_ids))

    program_cold_s, _ = _best_of(program_cold)
    # warm: the memoized index is reused, only the rules re-run
    program_warm_s, _ = _best_of(
        lambda: clean(run(root=root, rules=program_ids)))

    def two_tier():
        _INDEX_CACHE.clear()
        return clean(run(root=root))

    two_tier_s, _ = _best_of(two_tier)
    assert two_tier_s < LINT_BUDGET_S

    return {
        "bench": "reprolint analyzer: per-file tier vs whole-program "
                 "tier (cold and memoized index) vs the gated "
                 "two-tier run, on the real repository",
        "files_scanned": per_file.files_scanned,
        "file_rules": len(file_ids),
        "program_rules": len(program_ids),
        "repeats": REPEATS,
        "per_file_wall_s": round(per_file_s, 6),
        "program_cold_wall_s": round(program_cold_s, 6),
        "program_warm_wall_s": round(program_warm_s, 6),
        "two_tier_wall_s": round(two_tier_s, 6),
        "budget_s": LINT_BUDGET_S,
        "within_budget": True,
        "clean": True,
    }


def _fusion_sha(result) -> str:
    import hashlib

    digest = hashlib.sha256()
    for array in (result.labels, result.mei, result.abundances):
        digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


def measure_fusion() -> dict:
    """End-to-end ``run_amc`` with the fused fast paths vs the
    ``optimize="none"`` oracle, radii 1-3, sha256-pinned bit identity.

    The headline is the GPU backend (strided fetches + elided scratch
    per launch); the reference backend's region-wise shift-reuse and
    the stream compiler's pass fusion are reported as supporting rows.
    The acceptance bar asserted here: >= 1.5x on every radius with
    byte-identical outputs.
    """
    from repro.core import AMCConfig, run_amc
    from repro.core.mei import mei_reference

    cube = np.random.default_rng(SEED).uniform(
        0.05, 1.0, size=(LINES, SAMPLES, BANDS))

    radii = []
    for radius, repeats in ((1, REPEATS), (2, REPEATS), (3, 2)):
        none_s, none_out = _best_of(
            lambda: run_amc(cube, AMCConfig(
                n_classes=5, backend="gpu", se_radius=radius,
                optimize="none")), repeats)
        fuse_s, fuse_out = _best_of(
            lambda: run_amc(cube, AMCConfig(
                n_classes=5, backend="gpu", se_radius=radius)), repeats)
        assert _fusion_sha(fuse_out) == _fusion_sha(none_out)
        counters = fuse_out.gpu_output.counters
        radii.append({
            "radius": radius,
            "repeats": repeats,
            "none_wall_s": round(none_s, 6),
            "fuse_wall_s": round(fuse_s, 6),
            "speedup": round(none_s / fuse_s, 3),
            "sha256": _fusion_sha(fuse_out),
            "bit_identical": True,
            "temporaries_elided": counters.get("temporaries_elided", 0.0),
        })
    assert all(row["speedup"] >= 1.5 for row in radii)

    # Supporting: the serial reference backend's fused engine.
    ref_none_s, ref_none = _best_of(
        lambda: mei_reference(cube, RADIUS, optimize="none"))
    ref_fuse_s, ref_fuse = _best_of(lambda: mei_reference(cube, RADIUS))
    np.testing.assert_array_equal(ref_fuse.mei, ref_none.mei)
    np.testing.assert_array_equal(ref_fuse.cumulative, ref_none.cumulative)

    # Supporting: the stream compiler on the Fig. 4 normalization graph.
    from repro.gpu.device import VirtualGPU
    from repro.stream import GpuExecutor, Stream, optimize as opt_graph
    from repro.stream.amc_stages import build_normalization_graph, \
        group_streams

    graph = build_normalization_graph(BANDS)
    unfused = opt_graph(graph, fuse=False)
    fused = opt_graph(graph)

    def run_stream(stage_graph, mode):
        device = VirtualGPU(optimize=mode)
        inputs = group_streams(cube)
        inputs["zero"] = Stream.zeros("zero", LINES, SAMPLES)
        out = GpuExecutor(device).run(stage_graph, inputs)
        return device, out

    unfused_s, (oracle_dev, oracle_out) = _best_of(
        lambda: run_stream(unfused, "none"))
    fused_s, (fused_dev, fused_out) = _best_of(
        lambda: run_stream(fused, "fuse"))
    for name in graph.outputs:
        np.testing.assert_array_equal(fused_out[name].data,
                                      oracle_out[name].data)

    return {
        "bench": "pass fusion: end-to-end run_amc (gpu backend) fused "
                 "vs optimize='none' oracle; reference backend and "
                 "stream compiler as supporting rows",
        "cube": [LINES, SAMPLES, BANDS],
        "seed": SEED,
        "amc_gpu": radii,
        "headline_speedup": radii[1]["speedup"],
        "reference_backend": {
            "radius": RADIUS,
            "none_wall_s": round(ref_none_s, 6),
            "fuse_wall_s": round(ref_fuse_s, 6),
            "speedup": round(ref_none_s / ref_fuse_s, 3),
            "bit_identical": True,
        },
        "stream_compiler": {
            "graph": graph.name,
            "steps_unfused": unfused.step_count(),
            "steps_fused": fused.step_count(),
            "launches_unfused": oracle_dev.counters.kernel_launch_count,
            "launches_fused": fused_dev.counters.kernel_launch_count,
            "passes_fused": fused_dev.counters.passes_fused,
            "modeled_none_s": round(oracle_dev.counters.total_time_s, 6),
            "modeled_fuse_s": round(fused_dev.counters.total_time_s, 6),
            "wall_none_s": round(unfused_s, 6),
            "wall_fuse_s": round(fused_s, 6),
            "bit_identical": True,
        },
    }


def measure_fusion_smoke() -> dict:
    """CI-sized fusion check: tiny cube, one repeat, no file written.

    Asserts the two fusion contracts cheaply — end-to-end ``run_amc``
    bit identity between ``optimize="fuse"`` and the oracle, and the
    stream compiler shrinking launches without changing a byte — so a
    fusion regression fails the workflow in seconds, leaving the full
    ``fusion`` target for release measurements.
    """
    from repro.core import AMCConfig, run_amc
    from repro.gpu.device import VirtualGPU
    from repro.stream import GpuExecutor, Stream, optimize as opt_graph
    from repro.stream.amc_stages import build_normalization_graph, \
        group_streams

    lines, samples, bands = 24, 20, 12
    cube = np.random.default_rng(SEED).uniform(
        0.05, 1.0, size=(lines, samples, bands))

    none_s, none_out = _best_of(
        lambda: run_amc(cube, AMCConfig(n_classes=3, backend="gpu",
                                        optimize="none")), 1)
    fuse_s, fuse_out = _best_of(
        lambda: run_amc(cube, AMCConfig(n_classes=3, backend="gpu")), 1)
    assert _fusion_sha(fuse_out) == _fusion_sha(none_out)

    graph = build_normalization_graph(bands)
    unfused = opt_graph(graph, fuse=False)
    fused = opt_graph(graph)

    def run_stream(stage_graph, mode):
        device = VirtualGPU(optimize=mode)
        inputs = group_streams(cube)
        inputs["zero"] = Stream.zeros("zero", lines, samples)
        return device, GpuExecutor(device).run(stage_graph, inputs)

    oracle_dev, oracle_out = run_stream(unfused, "none")
    fused_dev, fused_out = run_stream(fused, "fuse")
    for name in graph.outputs:
        np.testing.assert_array_equal(fused_out[name].data,
                                      oracle_out[name].data)
    assert fused_dev.counters.kernel_launch_count \
        < oracle_dev.counters.kernel_launch_count
    assert fused_dev.counters.total_time_s < oracle_dev.counters.total_time_s

    return {
        "none_wall_s": round(none_s, 6),
        "fuse_wall_s": round(fuse_s, 6),
        "launches_unfused": oracle_dev.counters.kernel_launch_count,
        "launches_fused": fused_dev.counters.kernel_launch_count,
    }


def _write(record: dict, filename: str) -> str:
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    path = os.path.join(root, filename)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def main(argv=None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    target = argv[0] if argv else "morph"
    if target == "morph":
        record = measure()
        path = _write(record, "BENCH_morph.json")
        print(f"speedup {record['speedup']}x "
              f"(pairs {record['pairs_wall_s']}s -> "
              f"shift {record['shift_wall_s']}s, "
              f"reuse ratio {record['reuse']['reuse_ratio']:.2f})")
    elif target == "serving":
        record = measure_serving()
        path = _write(record, "BENCH_serving.json")
        for level in record["levels"]:
            print(f"{level['clients']:>2} client(s): "
                  f"cold {level['cold_jobs_per_s']} jobs/s "
                  f"({level['cold_latency_ms']} ms), "
                  f"cache-hit {level['cache_hit_jobs_per_s']} jobs/s "
                  f"({level['cache_hit_latency_ms']} ms)")
    elif target == "workloads":
        record = measure_workloads()
        path = _write(record, "BENCH_workloads.json")
        for row in record["workloads"]:
            print(f"{row['workload']:>4} ({row['kind']}): "
                  f"cold {row['cold_ms']} ms, "
                  f"cache-hit {row['cache_hit_ms']} ms")
    elif target == "recovery":
        record = measure_recovery()
        path = _write(record, "BENCH_recovery.json")
        print(f"durable cost {record['durable_cost_per_job_ms']} ms/job "
              f"({record['durable_overhead_pct']}% on this geometry); "
              f"restart recovery {record['restart_recovery_ms']} ms, "
              f"disk hit {record['disk_cache_hit_ms']} ms")
        for row in record["replay"]:
            print(f"replay {row['records']:>5} records: "
                  f"{row['replay_ms']} ms")
    elif target == "lint":
        record = measure_lint()
        path = _write(record, "BENCH_LINT.json")
        print(f"per-file tier {record['per_file_wall_s']}s, "
              f"program tier cold {record['program_cold_wall_s']}s / "
              f"warm {record['program_warm_wall_s']}s, "
              f"two-tier {record['two_tier_wall_s']}s "
              f"(budget {record['budget_s']}s) over "
              f"{record['files_scanned']} files")
    elif target == "fusion":
        record = measure_fusion()
        path = _write(record, "BENCH_fusion.json")
        for row in record["amc_gpu"]:
            print(f"run_amc gpu r={row['radius']}: "
                  f"{row['speedup']}x (none {row['none_wall_s']}s -> "
                  f"fuse {row['fuse_wall_s']}s, bit-identical)")
        stream = record["stream_compiler"]
        print(f"stream compiler: {stream['launches_unfused']} -> "
              f"{stream['launches_fused']} launches "
              f"({stream['passes_fused']} passes fused)")
    elif target == "fusion-smoke":
        record = measure_fusion_smoke()
        print(f"fusion smoke OK: run_amc bit-identical "
              f"(none {record['none_wall_s']}s, "
              f"fuse {record['fuse_wall_s']}s); stream compiler "
              f"{record['launches_unfused']} -> "
              f"{record['launches_fused']} launches")
        return
    else:
        raise SystemExit(f"unknown bench target {target!r}; "
                         f"pick from: morph, serving, workloads, "
                         f"recovery, lint, fusion, fusion-smoke")
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
