"""Setuptools entry point.

A ``setup.py`` (rather than a pure ``pyproject.toml`` build-system table)
is kept deliberately: the target environment is offline and has no
``wheel`` package, so ``pip install -e .`` must take the legacy
``setup.py develop`` path, which needs neither network access nor wheel
building.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Parallel Hyperspectral Image Processing on "
        "Commodity Graphics Hardware' (ICPPW 2006): AMC morphological "
        "classification on a simulated stream-programming GPU"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.24", "scipy>=1.10"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
