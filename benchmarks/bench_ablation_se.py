"""Ablation — structuring-element size (the O(p_f x p_B x N) claim).

Paper §3.1 states the algorithm's complexity as O(p_f x p_B x N).  The
pair-map formulation actually scales with the number of *pairs*
(p_B(p_B-1)/2), which is the O(p_B) factor per neighbour the paper
counts; this bench measures both the modeled GPU time and the analytic
CPU workload at SE radius 1 and 2 and verifies the predicted growth
(25x24/2 = 300 pairs vs 9x8/2 = 36: about 8.3x more pair work).
"""

import numpy as np
import pytest

from repro.bench import format_table
from repro.core.amc_gpu import gpu_morphological_stage
from repro.core.workload import morphological_workload

RADII = (1, 2)


def _sweep(cube):
    return {r: gpu_morphological_stage(cube, radius=r) for r in RADII}


def test_ablation_se_size(benchmark, report):
    cube = np.random.default_rng(29).uniform(0.05, 1.0, size=(24, 24, 32))
    outs = benchmark.pedantic(_sweep, args=(cube,), rounds=1,
                              iterations=1, warmup_rounds=0)

    rows = []
    for radius, out in outs.items():
        w = morphological_workload(24, 24, 32, radius)
        rows.append([f"{2 * radius + 1}x{2 * radius + 1}",
                     w.pair_count,
                     w.flops / 1e6,
                     int(out.counters["kernel_launches"]),
                     out.modeled_time_s * 1e3])
    report("ablation_se", format_table(
        "Ablation — structuring element size (24x24x32 cube, 7800 GTX)",
        ["SE", "pairs", "Mflops", "launches", "total ms"], rows))

    t1 = outs[1].modeled_time_s
    t2 = outs[2].modeled_time_s
    pair_ratio = 300 / 36
    # Modeled time grows with the pair count (transfer terms dilute the
    # pure ratio, so accept a broad band around it).
    assert 0.5 * pair_ratio < t2 / t1 < 1.3 * pair_ratio
    # MEI at radius 2 sees a wider window -> scores dominate radius 1 on
    # average (more pixels per neighbourhood, larger cumulative sums).
    assert outs[2].mei.mean() > outs[1].mei.mean()
