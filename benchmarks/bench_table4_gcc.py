"""Table 4 — execution time (ms) for CPU and GPU implementations, gcc
builds, over the six image sizes.

Paper (gcc 4.0): four platforms x six sizes; headline observations:
linear scaling with size, GPU speedup "close to 55" over the P4, ~400%
between GPU generations, <10% between CPU generations.

Here: the six paper-size rows come from the analytic projection (which
the test suite proves equal to the simulator's counters), and a measured
wall-clock sweep of the *actual implementations* (vectorized CPU code
and the full GPU simulator) at reduced scale verifies the linear-scaling
claim on real executions.

Note on absolute values: the paper's own table is internally inconsistent
(547 MB in 12 ms exceeds the 7800 GTX's memory bandwidth; the text says
"12 seconds" for the same configuration), so this reproduction matches
*ratios and scaling*, not milliseconds — see EXPERIMENTS.md.
"""

import time

import numpy as np
import pytest

from repro.bench import format_table, paper_size_points, platform_matrix
from repro.bench.paper_data import (
    PAPER_TABLE4_GCC_MS,
    paper_scaling_slopes,
    paper_speedups,
)
from repro.bench.scaling import speedup_summary
from repro.core.amc_gpu import gpu_morphological_stage
from repro.cpu import GCC40, cpu_morphological_stage


def _modeled_table():
    points = paper_size_points()
    columns = platform_matrix(points, cpu_build=GCC40)
    rows = []
    for i, point in enumerate(points):
        rows.append([f"{point.size_mb:.0f}",
                     columns["P4 C"][i], columns["Prescott"][i],
                     columns["FX5950 U"][i], columns["7800 GTX"][i]])
    return columns, rows


def test_table4_modeled(benchmark, report):
    columns, rows = benchmark.pedantic(_modeled_table, rounds=1,
                                       iterations=1, warmup_rounds=0)
    table = format_table(
        "Table 4 — execution time (ms), gcc builds (modeled, paper sizes)",
        ["Size (MB)", "P4 C", "Prescott", "FX5950 U", "7800 GTX"], rows)
    ratios = speedup_summary(columns)
    paper = paper_speedups(PAPER_TABLE4_GCC_MS)
    table += ("\n\nheadline ratios, modeled vs the paper's own table "
              "(mean over sizes):"
              f"\n  P4/7800 GTX     = {ratios['p4_over_7800']:.1f}x"
              f"   (paper: {paper['p4_over_7800']:.1f}x, text: ~55x)"
              f"\n  FX5950/7800 GTX = {ratios['fx5950_over_7800']:.1f}x"
              f"   (paper: {paper['fx5950_over_7800']:.1f}x)"
              f"\n  P4/FX5950       = {ratios['p4_over_fx5950']:.1f}x"
              f"   (paper: {paper['p4_over_fx5950']:.1f}x)"
              f"\n  P4/Prescott     = {ratios['p4_over_prescott']:.2f}x"
              f"   (paper: {paper['p4_over_prescott']:.2f}x)"
              "\nscaling slope time(547)/time(68), modeled vs paper:"
              + "".join(
                  f"\n  {label:<10} {columns[label][-1] / columns[label][0]:.2f}"
                  f"  (paper: {slope:.2f})"
                  for label, slope in
                  paper_scaling_slopes(PAPER_TABLE4_GCC_MS).items()))
    report("table4_gcc", table)

    # Linear scaling: time(547)/time(68) must track the size ratio (~8x).
    for label in ("P4 C", "Prescott", "FX5950 U", "7800 GTX"):
        col = columns[label]
        assert col[-1] / col[0] == pytest.approx(8.0, rel=0.15), label
    # Ordering: every GPU beats every CPU at every size; 7800 beats FX.
    for i in range(6):
        assert columns["7800 GTX"][i] < columns["FX5950 U"][i] \
            < columns["P4 C"][i]


# Wall-clock sweep sizes (lines of a 64-sample, 64-band scene).
_MEASURED_LINES = (32, 64, 128)


def _measured_sweep(device: str):
    rng = np.random.default_rng(5)
    cube = rng.uniform(0.05, 1.0, size=(max(_MEASURED_LINES), 64, 64))
    times = []
    for lines in _MEASURED_LINES:
        sub = cube[:lines]
        start = time.perf_counter()
        if device == "cpu":
            cpu_morphological_stage(sub, compiler=GCC40)
        else:
            gpu_morphological_stage(sub)
        times.append(time.perf_counter() - start)
    return times


def test_table4_measured_cpu_scaling(benchmark, report):
    times = benchmark.pedantic(_measured_sweep, args=("cpu",), rounds=1,
                               iterations=1, warmup_rounds=0)
    rows = [[lines, t * 1e3] for lines, t in zip(_MEASURED_LINES, times)]
    report("table4_measured_cpu",
           format_table("Table 4 (measured) — wall-clock of the scalar-"
                        "structured CPU build, reduced scale",
                        ["lines", "wall ms"], rows))
    # Linear scaling on real executions between the two largest sizes
    # (the smallest run is distorted by interpreter fixed costs and by
    # the working set dropping into cache).
    assert times[2] / times[1] == pytest.approx(2.0, rel=0.35)


def test_table4_measured_gpu_scaling(benchmark, report):
    times = benchmark.pedantic(_measured_sweep, args=("gpu",), rounds=1,
                               iterations=1, warmup_rounds=0)
    rows = [[lines, t * 1e3] for lines, t in zip(_MEASURED_LINES, times)]
    report("table4_measured_gpu",
           format_table("Table 4 (measured) — wall-clock of the GPU "
                        "simulator, reduced scale",
                        ["lines", "wall ms"], rows))
    assert times[2] > times[0]  # monotone in problem size
