"""Per-workload serving latency — cold execution vs cache hit.

The workload registry's pitch is that one server (and one cache)
serves every registered algorithm without collisions: an AMC
classification, a SAM/CEM/RX detection and a PCA reduction of the
*same cube* are five distinct cache keys, and a resubmission of any of
them is a pure cache hit.  This bench measures that, one cold/warm
pair per registered workload; the zero-extra-execution, bit-identity
and key-distinctness properties are asserted inside the measurement
itself (``tools.bench_record.measure_workloads``).

Absolute numbers are host-dependent; the shape — cache-hit latency
roughly constant across workloads while cold latency tracks each
algorithm's cost, with AMC's five-stage pipeline dominating — is the
point.
"""

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if REPO_ROOT not in sys.path:
    sys.path.insert(0, REPO_ROOT)

from repro.bench import format_table

from tools.bench_record import measure_workloads


def test_workload_latency(benchmark, report):
    record = benchmark.pedantic(measure_workloads, rounds=1, iterations=1,
                                warmup_rounds=0)

    rows = [[row["workload"], row["kind"],
             f"{row['cold_ms']:.2f}", f"{row['cache_hit_ms']:.2f}"]
            for row in record["workloads"]]
    report("workload_latency", format_table(
        "Registered workloads through one server: cold execution vs "
        "content-addressed cache hit (32x32x32 cube)",
        ["workload", "kind", "cold ms", "hit ms"],
        rows))

    assert record["zero_duplicate_executions"]
    assert record["distinct_keys_per_workload"]
    names = {row["workload"] for row in record["workloads"]}
    assert {"amc", "sam", "cem", "rx", "pca"} <= names
    for row in record["workloads"]:
        # a cache hit skips the pipeline entirely; even on a noisy
        # host it must undercut the cold execution
        assert row["cache_hit_ms"] < row["cold_ms"]
