"""Figure 6 — performance of the CPU and GPU implementations across
hardware generations (gcc builds).

Paper: the figure plots the four platforms' performance over the image
sizes and is read out in §4.3 as two generation-over-generation facts:
2003->2005 bought the CPU "below 10%" while the GPUs improved by "a
remarkable 400%" (6x the fragment processors, more bandwidth).

Here: the figure's series are regenerated as performance (processed
MB per second, higher = better) per platform per size, plus the two
generation factors, all from the same audited projection as Tables 4-5.
"""

import pytest

from repro.bench import format_series, paper_size_points, platform_matrix
from repro.cpu import GCC40


def test_fig6_performance_evolution(benchmark, report):
    points = paper_size_points()
    columns = benchmark.pedantic(platform_matrix, args=(points,),
                                 kwargs={"cpu_build": GCC40}, rounds=1,
                                 iterations=1, warmup_rounds=0)
    sizes = [p.size_mb for p in points]

    series = {
        label: [size / (ms / 1e3) for size, ms in zip(sizes, columns[label])]
        for label in ("P4 C", "Prescott", "FX5950 U", "7800 GTX")
    }
    text = format_series(
        "Figure 6 — performance (MB/s processed, gcc builds; higher is "
        "better)", "Size (MB)", [f"{s:.0f}" for s in sizes], series)

    cpu_gain = series["Prescott"][-1] / series["P4 C"][-1]
    gpu_gain = series["7800 GTX"][-1] / series["FX5950 U"][-1]
    text += ("\n\ngeneration-over-generation (2003 -> 2005, full scene):"
             f"\n  CPU (P4 -> Prescott):   {100 * (cpu_gain - 1):+.1f}%"
             f"   (paper: below +10%)"
             f"\n  GPU (FX5950 -> 7800):   {100 * (gpu_gain - 1):+.1f}%"
             f"   (paper: ~+400%)")
    report("fig6_evolution", text)

    # CPU generation gain is marginal...
    assert 1.0 < cpu_gain < 1.10
    # ...while the GPU generation gain is several hundred percent.
    assert gpu_gain > 3.0
    # Performance per platform is roughly size-independent (flat series =
    # the linear scaling of the tables).
    for label, values in series.items():
        assert max(values) / min(values) < 1.6, label
    # And the 2005 GPU is the fastest platform at every size.
    for i in range(len(sizes)):
        best = max(series, key=lambda lab: series[lab][i])
        assert best == "7800 GTX"


def test_fig6_headline_speedup_band(benchmark):
    """The figure's visual headline: an order-of-magnitude-plus gap
    between the GPU and CPU curves (benchmarked as the projection's
    evaluation cost, which is itself sub-millisecond)."""
    def ratios():
        columns = platform_matrix(paper_size_points(), cpu_build=GCC40)
        return [p4 / gtx for p4, gtx in zip(columns["P4 C"],
                                            columns["7800 GTX"])]

    values = benchmark.pedantic(ratios, rounds=1, iterations=1,
                                warmup_rounds=0)
    assert all(20.0 < v < 80.0 for v in values)
