"""Scaling — serial vs multi-core chunked execution of the AMC
morphological stage.

The paper's argument is that the streaming decomposition lets
data-parallel hardware eat the morphological stage; `repro.parallel`
makes the same argument on the host by dispatching halo-carrying chunks
across a process pool.  This bench records the serial-vs-parallel wall
time of the morphological stage (the runtime-dominant stage) over a
worker sweep, reports the speedup and the redundant halo lines each
configuration pays, and asserts the parallel results stay bit-identical
to serial — the property that makes the whole exercise legitimate.

Absolute speedups are host-dependent (core count, fork cost); the
recorded artefact is the measurement, not a pass/fail threshold.
"""

import os
import time

import numpy as np

from repro.bench import format_table
from repro.core.mei import mei_reference
from repro.parallel import parallel_morphological_stage
from repro.profiling import Profiler

WORKERS = (1, 2, 4)
LINES, SAMPLES, BANDS = 96, 32, 32
RADIUS = 1


def _sweep(cube):
    outs = {}
    for workers in WORKERS:
        profiler = Profiler()
        start = time.perf_counter()
        mei, ero, dil, _ = parallel_morphological_stage(
            cube, RADIUS, backend="reference", n_workers=workers,
            profiler=profiler)
        wall = time.perf_counter() - start
        outs[workers] = (wall, mei, ero, dil, profiler.chunk_records)
    return outs


def test_parallel_scaling(benchmark, report):
    cube = np.random.default_rng(42).uniform(
        0.05, 1.0, size=(LINES, SAMPLES, BANDS))
    outs = benchmark.pedantic(_sweep, args=(cube,), rounds=1,
                              iterations=1, warmup_rounds=0)

    serial_wall = outs[WORKERS[0]][0]
    rows = []
    for workers in WORKERS:
        wall, _, _, _, records = outs[workers]
        ext = sum(r.ext_lines for r in records)
        halo_pct = 100.0 * (ext / LINES - 1.0)
        rows.append([workers, len(records), f"{wall * 1e3:.1f}",
                     f"{serial_wall / wall:.2f}x", f"{halo_pct:.1f}"])
    rows.append([f"(cores: {os.cpu_count()})", "", "", "", ""])
    report("parallel_scaling", format_table(
        f"Scaling — morphological stage, {LINES}x{SAMPLES}x{BANDS} cube, "
        f"reference backend",
        ["workers", "chunks", "wall ms", "speedup", "halo overhead %"],
        rows))

    # Correctness is worker-count-invariant — bit for bit.
    whole = mei_reference(cube, RADIUS)
    for workers in WORKERS:
        _, mei, ero, dil, _ = outs[workers]
        np.testing.assert_array_equal(mei, whole.mei)
        np.testing.assert_array_equal(ero, whole.erosion_index)
        np.testing.assert_array_equal(dil, whole.dilation_index)
