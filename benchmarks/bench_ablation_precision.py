"""Ablation — float32 fragment arithmetic vs float64 reference.

The paper's abstract claims commodity GPUs deliver "the desired
performance at the quality required".  The quality half of that claim is
quantifiable: the fragment pipelines compute in float32 while the
reference CPU path runs float64.  This bench runs both on the same
scenes and measures the numerical gap — MEI error distribution and the
rate of erosion/dilation argmin/argmax flips — at several band counts
(deeper spectral reductions accumulate more float32 error).
"""

import numpy as np
import pytest

from repro.bench import format_table
from repro.core import mei_reference
from repro.core.amc_gpu import gpu_morphological_stage

BAND_COUNTS = (16, 64, 160)


def _sweep():
    rng = np.random.default_rng(41)
    rows = []
    for bands in BAND_COUNTS:
        cube = rng.uniform(0.05, 1.0, size=(24, 24, bands))
        ref = mei_reference(cube)
        gpu = gpu_morphological_stage(cube)
        scale = np.abs(ref.mei).max()
        err = np.abs(gpu.mei - ref.mei) / max(scale, 1e-30)
        flips = 1.0 - (gpu.erosion_index == ref.erosion_index).mean()
        rows.append((bands, float(err.max()), float(np.median(err)),
                     float(flips)))
    return rows


def test_ablation_precision(benchmark, report):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1,
                              warmup_rounds=0)
    report("ablation_precision", format_table(
        "Ablation — float32 pipeline vs float64 reference "
        "(24x24 scenes, 7800 GTX)",
        ["bands", "max rel err", "median rel err", "argmin flip rate"],
        [[b, mx, med, fl] for b, mx, med, fl in rows]))

    for bands, max_err, median_err, flips in rows:
        # float32 keeps the MEI to ~1e-4 relative of its dynamic range...
        assert max_err < 5e-3, (bands, max_err)
        assert median_err < 1e-4, (bands, median_err)
        # ...and essentially never flips an erosion/dilation decision.
        assert flips < 0.02, (bands, flips)
    # error grows (weakly) with reduction depth but stays bounded
    assert rows[-1][1] < 100 * rows[0][1]
