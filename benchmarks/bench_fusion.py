"""Pass-fusion compiler — launches, modeled time and wall clock.

The stream compiler (:func:`repro.stream.optimize.fuse_elementwise`)
folds chains of single-consumer kernel applications into composite
passes: intermediates read at zero offset are inlined into the
consumer's body, fixed-offset reads become in-launch parts, and the
whole group costs one render-target write and one launch overhead.

This bench runs the Fig. 4 normalization graph through the *actual
simulator* unfused and fused, and an elementwise post-processing chain
at several fusion depths — verifying bit-identical outputs while
launches and modeled time fall.
"""

import numpy as np
import pytest

from repro.bench import format_table
from repro.gpu import GEFORCE_7800GTX, VirtualGPU
from repro.gpu import shaderir as ir
from repro.stream import (
    GpuExecutor,
    StageGraph,
    Step,
    Stream,
    StreamKernel,
    fuse_elementwise,
    optimize,
)
from repro.stream.amc_stages import build_normalization_graph, group_streams

LINES, SAMPLES, BANDS = 64, 64, 32
SEED = 20060815

#: max_group depths of the chain sweep (1 = fusion off).
DEPTHS = (1, 2, 4, 8)
CHAIN_LEN = 8


def _chain_graph():
    """An 8-step elementwise chain (scale, clamp-log, exp, blends)."""
    steps = []
    prev = "x"
    for index in range(CHAIN_LEN):
        if index % 3 == 0:
            body = ir.add(ir.mul(ir.TexFetch("a"), 1.25), 0.01)
        elif index % 3 == 1:
            body = ir.log(ir.max_(ir.TexFetch("a"), 1e-6))
        else:
            body = ir.exp(ir.mul(ir.TexFetch("a"), 0.5))
        kernel = StreamKernel.from_expression(f"k{index}", body,
                                              inputs=("a",))
        out = f"t{index}"
        steps.append(Step(kernel, {"a": prev}, out))
        prev = out
    return StageGraph("chain", inputs=("x",), steps=tuple(steps),
                      outputs=(prev,))


def _run(graph, inputs):
    device = VirtualGPU(GEFORCE_7800GTX)
    out = GpuExecutor(device).run(graph, {k: s.copy() for k, s in
                                          inputs.items()})
    return device, out


def test_fusion_normalization_graph(benchmark, report):
    """The real Fig. 4 stage-2 graph: unfused vs compiled."""
    rng = np.random.default_rng(SEED)
    cube = rng.uniform(0.05, 1.0, size=(LINES, SAMPLES, BANDS))
    graph = build_normalization_graph(BANDS)
    inputs = group_streams(cube)
    inputs["zero"] = Stream.zeros("zero", LINES, SAMPLES)
    unfused = optimize(graph, fuse=False)
    fused = optimize(graph)

    def sweep():
        return _run(unfused, inputs), _run(fused, inputs)

    ((dev_u, out_u), (dev_f, out_f)) = benchmark.pedantic(
        sweep, rounds=1, iterations=1, warmup_rounds=0)

    for name in graph.outputs:
        np.testing.assert_array_equal(out_f[name].data, out_u[name].data)
    assert dev_f.counters.kernel_launch_count \
        < dev_u.counters.kernel_launch_count
    assert dev_f.counters.total_time_s < dev_u.counters.total_time_s
    assert dev_f.counters.passes_fused > 0

    report("fusion_normalization", format_table(
        f"Pass fusion — Fig. 4 normalization graph "
        f"({LINES}x{SAMPLES}x{BANDS} cube, 7800 GTX)",
        ["pipeline", "steps", "launches", "passes fused", "modeled ms"],
        [["unfused", unfused.step_count(),
          dev_u.counters.kernel_launch_count, 0,
          dev_u.counters.total_time_s * 1e3],
         ["fused", fused.step_count(),
          dev_f.counters.kernel_launch_count,
          dev_f.counters.passes_fused,
          dev_f.counters.total_time_s * 1e3]]))


def test_fusion_depth_sweep(benchmark, report):
    """Launches and modeled time fall monotonically with max_group."""
    rng = np.random.default_rng(SEED)
    x = Stream.from_scalar("x", rng.uniform(0.05, 1.0,
                                            size=(LINES, SAMPLES)))
    graph = _chain_graph()

    def sweep():
        results = {}
        for depth in DEPTHS:
            fused = graph if depth == 1 \
                else fuse_elementwise(graph, max_group=depth)
            results[depth] = _run(fused, {"x": x})
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1,
                                 warmup_rounds=0)

    base_dev, base_out = results[DEPTHS[0]]
    out_name = graph.outputs[0]
    rows = []
    for depth in DEPTHS:
        device, out = results[depth]
        np.testing.assert_array_equal(out[out_name].data,
                                      base_out[out_name].data)
        rows.append([depth, device.counters.kernel_launch_count,
                     device.counters.passes_fused,
                     device.counters.total_time_s * 1e3])
    report("fusion_depth", format_table(
        f"Pass fusion — {CHAIN_LEN}-step elementwise chain vs max_group "
        f"({LINES}x{SAMPLES} stream, 7800 GTX)",
        ["max_group", "launches", "passes fused", "modeled ms"], rows))

    launches = [results[d][0].counters.kernel_launch_count for d in DEPTHS]
    times = [results[d][0].counters.total_time_s for d in DEPTHS]
    assert launches == sorted(launches, reverse=True)
    assert times == sorted(times, reverse=True)
    # Full fusion: 8 passes -> 1 launch, overhead amortized 8x.
    assert launches[-1] == 1
    assert times[0] / times[-1] > 1.5
