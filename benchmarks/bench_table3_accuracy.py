"""Table 3 — per-class and overall classification accuracy.

Paper: AMC with a 3x3 structuring element on the AVIRIS Indian Pines
scene, 30+ ground-truth classes, overall accuracy 72.35%.

Here: the same algorithm on the synthetic Indian-Pines-like scene (see
DESIGN.md for the substitution argument), c = 45 endmembers (the standard
slight over-estimate of the class count for an unsupervised pipeline),
majority-vote endmember labeling.  The regenerated table lists the
paper's value next to the measured value for every class.

Shape expectations (asserted):
* overall accuracy lands in the paper's neighbourhood (60-90%),
* macroscopically pure classes (BareSoil, Concrete/Asphalt, NotCropped,
  Woods) average far above the heavily mixed ones (Buildings,
  Corn-EW, Fescue) — the paper's central qualitative observation.
"""

import numpy as np

from repro.bench.paper_data import (
    PAPER_TABLE3_ACCURACY,
    PAPER_TABLE3_OVERALL,
)
from repro.core import AMCConfig, run_amc

PURE_CLASSES = ("BareSoil", "Concrete/Asphalt", "NotCropped", "Woods",
                "Corn")
MIXED_CLASSES = ("Buildings", "Corn-EW", "Fescue", "Corn-NoTill-NS")


def _run(scene):
    return run_amc(scene.cube, AMCConfig(n_classes=45),
                   ground_truth=scene.ground_truth,
                   class_names=scene.class_names)


def test_table3_accuracy(benchmark, table3_scene, report):
    scene = table3_scene
    result = benchmark.pedantic(_run, args=(scene,), rounds=1,
                                iterations=1, warmup_rounds=0)

    paper = PAPER_TABLE3_ACCURACY
    width = max(len(n) for n in scene.class_names) + 2
    lines = [f"{'Class':<{width}}{'paper %':>10}{'measured %':>12}",
             "-" * (width + 22)]
    measured = {}
    for name, acc in result.report.rows():
        measured[name] = acc
        cell = "      --" if np.isnan(acc) else f"{acc:10.2f}"
        lines.append(f"{name:<{width}}{paper[name]:>10.2f}  {cell}")
    lines.append("-" * (width + 22))
    lines.append(f"{'Overall:':<{width}}{PAPER_TABLE3_OVERALL:>10.2f}  "
                 f"{result.report.overall_accuracy:10.2f}")
    lines.append(f"{'kappa:':<{width}}{'':>10}  "
                 f"{result.report.kappa:10.3f}")
    report("table3_accuracy",
           "Table 3 — classification accuracy per ground-truth class\n"
           "=========================================================\n"
           + "\n".join(lines))

    overall = result.report.overall_accuracy
    assert 60.0 < overall < 90.0, \
        f"overall accuracy {overall:.1f}% far from the paper's 72.35%"

    pure = [measured[n] for n in PURE_CLASSES
            if n in measured and not np.isnan(measured[n])]
    mixed = [measured[n] for n in MIXED_CLASSES
             if n in measured and not np.isnan(measured[n])]
    assert pure and mixed
    assert np.mean(pure) > np.mean(mixed) + 10.0, (
        "pure classes must classify far better than mixed classes "
        f"(pure {np.mean(pure):.1f}% vs mixed {np.mean(mixed):.1f}%)")
