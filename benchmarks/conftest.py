"""Shared infrastructure for the benchmark suite.

Every ``bench_*.py`` regenerates one table or figure of the paper: it
computes the full-size result through the analytic projection (audited
against the simulator by the test suite), *measures* wall-clock behaviour
of the real implementations at a scale this host can run, prints the
regenerated artefact, and appends it to ``benchmarks/results/`` so the
outputs survive the pytest run.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")


def pytest_collection_modifyitems(items):
    """Keep table/figure order stable regardless of file collection."""
    items.sort(key=lambda item: item.nodeid)


@pytest.fixture(scope="session")
def results_dir() -> str:
    """Directory the regenerated artefacts are written into."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def report():
    """Print a regenerated artefact and persist it to results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _report(name: str, text: str) -> None:
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _report


@pytest.fixture(scope="session")
def bench_scene():
    """The measured-workload scene: reduced spatial scale, full spectral
    behaviour (56 band groups after bad-band removal would be too slow on
    one core; 128 channels keeps the group loop realistic)."""
    from repro.hsi import generate_indian_pines_like

    return generate_indian_pines_like(64, 64, band_count=128, seed=2006)


@pytest.fixture(scope="session")
def table3_scene():
    """The accuracy scene: larger spatially so (almost) all 32 classes
    are realized, full 224-channel sensor."""
    from repro.hsi import generate_indian_pines_like

    return generate_indian_pines_like(160, 160, band_count=224, seed=2006)
