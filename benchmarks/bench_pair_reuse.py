"""Pair reuse — all-pairs loop vs the shift-reuse engine.

The morphological stage evaluates one SID map per unordered SE-offset
pair: ``K(K-1)/2`` full-image band reductions.  The shift-reuse engine
(:mod:`repro.core.pairreuse`) exploits the translation invariance of
``SID(f(x + a), f(x + b))`` to pay only one reduction per *unique
offset difference* (plus the direct zero-offset pairs and the border
bands) — the "maximize computation reuse" hand-tuning principle the
paper applies to its CPU codes.  This bench measures both methods of
``cumulative_distances`` over a radius/size sweep, reports the wall
times, the measured reuse ratio, and the border-recompute overhead,
and asserts the outputs stay bit-identical — the property that makes
the fast path a drop-in default.

Absolute speedups are host-dependent; the recorded artefact is the
measurement.  ``tools/bench_record.py`` runs the acceptance
measurement (radius 2, >= 2x) and writes ``BENCH_morph.json``.
"""

import time

import numpy as np

from repro.bench import format_table
from repro.core.mei import mei_reference

CASES = (
    # (lines, samples, bands, radius)
    (64, 64, 32, 1),
    (96, 96, 32, 2),
    (64, 64, 32, 3),
)


def _measure(cube, radius):
    start = time.perf_counter()
    pairs = mei_reference(cube, radius, method="pairs")
    pairs_s = time.perf_counter() - start
    start = time.perf_counter()
    shift = mei_reference(cube, radius, method="shift")
    shift_s = time.perf_counter() - start
    return pairs, pairs_s, shift, shift_s


def _sweep():
    rng = np.random.default_rng(20060815)
    outs = []
    for lines, samples, bands, radius in CASES:
        cube = rng.uniform(0.05, 1.0, size=(lines, samples, bands))
        outs.append((cube.shape, radius, *_measure(cube, radius)))
    return outs


def test_pair_reuse(benchmark, report):
    outs = benchmark.pedantic(_sweep, rounds=1, iterations=1,
                              warmup_rounds=0)

    rows = []
    for shape, radius, pairs, pairs_s, shift, shift_s in outs:
        stats = shift.stats
        border_pct = 100.0 * stats.border_pixels \
            / (stats.total_pixels * max(stats.pair_maps, 1))
        rows.append([
            "x".join(str(n) for n in shape), radius,
            f"{pairs_s * 1e3:.1f}", f"{shift_s * 1e3:.1f}",
            f"{pairs_s / shift_s:.2f}x",
            f"{stats.reuse_ratio:.2f}",
            f"{border_pct:.2f}",
        ])
    report("pair_reuse", format_table(
        "Pair reuse — cumulative SID maps, all-pairs vs shift-reuse",
        ["cube", "radius", "pairs ms", "shift ms", "speedup",
         "reuse ratio", "border %"],
        rows))

    # The fast path is only legitimate because it is bit-identical.
    for shape, radius, pairs, pairs_s, shift, shift_s in outs:
        np.testing.assert_array_equal(shift.mei, pairs.mei)
        np.testing.assert_array_equal(shift.cumulative, pairs.cumulative)
