"""Table 5 — execution time (ms), icc (vectorized) builds.

Paper (icc 9.0 -O3 -tpp7 -restrict -xP): the CPU columns drop by ~1.65x
relative to gcc (vectorized band loops, memory-bound ceiling); the GPU
columns are unchanged.  The paper summarizes the resulting GPU speedup
as "20" — still decisive.

Here: the same projection as Table 4 with the ICC90 build model, plus a
measured wall-clock comparison of the scalar-structured and the
SIMD-structured CPU implementations showing the vectorization gain on
real executions.
"""

import time

import numpy as np
import pytest

from repro.bench import format_table, paper_size_points, platform_matrix
from repro.bench.paper_data import PAPER_TABLE5_ICC_MS, paper_speedups
from repro.bench.scaling import speedup_summary
from repro.cpu import GCC40, ICC90, cpu_morphological_stage


def test_table5_modeled(benchmark, report):
    points = paper_size_points()
    icc = benchmark.pedantic(platform_matrix, args=(points,),
                             kwargs={"cpu_build": ICC90}, rounds=1,
                             iterations=1, warmup_rounds=0)
    gcc = platform_matrix(points, cpu_build=GCC40)
    rows = []
    for i, point in enumerate(points):
        rows.append([f"{point.size_mb:.0f}",
                     icc["P4 C"][i], icc["Prescott"][i],
                     icc["FX5950 U"][i], icc["7800 GTX"][i]])
    ratios = speedup_summary(icc)
    table = format_table(
        "Table 5 — execution time (ms), icc builds (modeled, paper sizes)",
        ["Size (MB)", "P4 C", "Prescott", "FX5950 U", "7800 GTX"], rows)
    gains = [gcc["P4 C"][i] / icc["P4 C"][i] for i in range(len(points))]
    paper = paper_speedups(PAPER_TABLE5_ICC_MS)
    table += ("\n\nheadline ratios, modeled vs the paper's own table:"
              f"\n  P4(icc)/7800 GTX       = {ratios['p4_over_7800']:.1f}x"
              f"   (paper: {paper['p4_over_7800']:.1f}x, text: ~20x)"
              f"\n  Prescott(icc)/7800 GTX = "
              f"{ratios['prescott_over_7800']:.1f}x"
              f"   (paper: {paper['prescott_over_7800']:.1f}x)"
              f"\n  gcc->icc gain on P4    = {np.mean(gains):.2f}x"
              f"   (paper: ~1.65x)")
    report("table5_icc", table)

    # GPU columns identical to Table 4 (the compiler only affects CPUs).
    assert icc["7800 GTX"] == gcc["7800 GTX"]
    assert icc["FX5950 U"] == gcc["FX5950 U"]
    # The icc build is faster than gcc but far less than the 4x SIMD
    # width — the memory-bound effect behind the paper's 1.65x.
    for gain in gains:
        assert 1.2 < gain < 3.0
    # The decisive GPU advantage survives vectorization.
    assert ratios["p4_over_7800"] > 10.0


def _measure(implementation: str) -> float:
    cube = np.random.default_rng(6).uniform(0.05, 1.0, size=(64, 64, 64))
    start = time.perf_counter()
    cpu_morphological_stage(cube, implementation=implementation)
    return time.perf_counter() - start


def test_table5_measured_vectorization_gain(benchmark, report):
    scalar = _measure("scalar")
    simd = benchmark.pedantic(_measure, args=("simd",), rounds=1,
                              iterations=1, warmup_rounds=0)
    gain = scalar / simd
    report("table5_measured_vectorization",
           format_table("Table 5 (measured) — scalar- vs SIMD-structured "
                        "CPU build, 64x64x64 cube",
                        ["build", "wall ms"],
                        [["scalar (gcc-like)", scalar * 1e3],
                         ["simd (icc-like)", simd * 1e3],
                         ["gain", gain]]))
    # The band-at-a-time structure must be slower than whole-axis
    # reductions (how much depends on the host's BLAS/NumPy).
    assert gain > 1.0
