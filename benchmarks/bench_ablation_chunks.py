"""Ablation — chunk size (VRAM budget) vs transfer overhead.

Paper §3.2 splits over-VRAM images into chunks of whole pixel vectors;
the halo each chunk must carry (so erosion/dilation at chunk borders is
exact) makes small chunks pay twice: re-uploaded halo lines and
per-chunk fixed costs.  This bench runs the simulator under shrinking
VRAM budgets and reports chunk count, redundant upload traffic and
modeled time — quantifying the design pressure behind "every chunk
incorporates all the spectral information on a localized spatial
region".
"""

import numpy as np
import pytest

from repro.bench import format_table
from repro.core.amc_gpu import gpu_morphological_stage
from repro.gpu import GEFORCE_7800GTX

BUDGETS_KIB = (16384, 512, 256, 128, 64)


def _sweep(cube):
    outs = {}
    for budget in BUDGETS_KIB:
        spec = GEFORCE_7800GTX.with_(vram_bytes=budget * 1024)
        outs[budget] = gpu_morphological_stage(cube, spec=spec)
    return outs


def test_ablation_chunking(benchmark, report):
    cube = np.random.default_rng(23).uniform(0.05, 1.0, size=(48, 24, 24))
    outs = benchmark.pedantic(_sweep, args=(cube,), rounds=1,
                              iterations=1, warmup_rounds=0)

    ideal_upload = None
    rows = []
    for budget, out in outs.items():
        uploaded = out.counters["bytes_uploaded"]
        if ideal_upload is None:
            ideal_upload = uploaded  # single-chunk = no redundancy
        rows.append([f"{budget} KiB", out.chunk_count,
                     uploaded / 1e6,
                     100.0 * (uploaded / ideal_upload - 1.0),
                     out.modeled_time_s * 1e3])
    report("ablation_chunks", format_table(
        "Ablation — VRAM budget vs chunking overhead (48x24x24 cube)",
        ["VRAM", "chunks", "uploaded MB", "halo overhead %", "total ms"],
        rows))

    # Correctness is chunking-invariant...
    base = outs[BUDGETS_KIB[0]]
    for budget in BUDGETS_KIB[1:]:
        np.testing.assert_allclose(outs[budget].mei, base.mei,
                                   rtol=1e-6, atol=1e-8)
    # ...while chunk count rises and so does modeled time.
    chunks = [outs[b].chunk_count for b in BUDGETS_KIB]
    assert chunks == sorted(chunks)
    assert chunks[-1] > chunks[0]
    assert outs[BUDGETS_KIB[-1]].modeled_time_s > base.modeled_time_s
    # Redundant halo upload grows with chunk count.
    uploads = [outs[b].counters["bytes_uploaded"] for b in BUDGETS_KIB]
    assert uploads[-1] > uploads[0]
