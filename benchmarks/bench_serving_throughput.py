"""Serving throughput — jobs/sec and cold vs cache-hit latency.

The serving layer's pitch is that the recurrent-analysis workload (the
same scene, re-requested as parameters are tuned) collapses to one
pipeline execution per *distinct* request.  This bench measures that
collapse: 1, 4 and 16 concurrent clients each submit a distinct job
(the cold pass) and then the identical set again (the warm pass, all
cache hits).  The recorded artefact is the throughput/latency table;
the zero-extra-execution and bit-identity properties are asserted
inside the measurement itself (``tools.bench_record.measure_serving``).

Absolute numbers are host-dependent; the shape — cache-hit latency
orders of magnitude under cold latency, throughput scaling with
concurrency until the workers saturate — is the point.
"""

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if REPO_ROOT not in sys.path:
    sys.path.insert(0, REPO_ROOT)

from repro.bench import format_table

from tools.bench_record import measure_serving


def test_serving_throughput(benchmark, report):
    record = benchmark.pedantic(measure_serving, rounds=1, iterations=1,
                                warmup_rounds=0)

    rows = []
    for level in record["levels"]:
        rows.append([
            level["clients"],
            level["pipeline_runs"],
            f"{level['cold_jobs_per_s']:.1f}",
            f"{level['cold_latency_ms']:.1f}",
            f"{level['cache_hit_jobs_per_s']:.1f}",
            f"{level['cache_hit_latency_ms']:.2f}",
        ])
    rows.append([f"(cores: {os.cpu_count()})", "", "", "", "", ""])
    report("serving_throughput", format_table(
        "Serving throughput: cold execution vs content-addressed "
        "cache hits (2 workers)",
        ["clients", "executions", "cold jobs/s", "cold ms",
         "hit jobs/s", "hit ms"],
        rows))

    assert record["zero_duplicate_executions"]
    for level in record["levels"]:
        # a cache hit skips the pipeline entirely; even on a noisy host
        # it must be far faster than a cold execution
        assert (level["cache_hit_latency_ms"]
                < level["cold_latency_ms"] / 2)
        assert level["pipeline_runs"] == level["clients"]
