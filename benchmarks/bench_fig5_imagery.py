"""Figure 5 — scene imagery: the 587 nm band and the ground-truth map.

Paper: Fig. 5(a) shows the spectral band at 587 nm of the AVIRIS scene;
Fig. 5(b) the 30-class ground-truth map.  Here both are regenerated from
the synthetic scene as PGM/PPM files plus ASCII thumbnails in the text
report, and the artefacts' structure is asserted (band wavelength,
dynamic range, class coverage, palette integrity).
"""

import os

import numpy as np
import pytest

from repro.viz import render_ascii, write_class_map_ppm, write_pgm


def _generate(scene, out_dir):
    os.makedirs(out_dir, exist_ok=True)
    index, band = scene.cube.band_at_wavelength(587.0)
    band_path = write_pgm(band, os.path.join(out_dir, "fig5a_band587.pgm"))
    gt_path = write_class_map_ppm(
        scene.ground_truth, os.path.join(out_dir, "fig5b_groundtruth.ppm"),
        n_classes=scene.n_classes)
    return index, band, band_path, gt_path


def test_fig5_imagery(benchmark, report, table3_scene, results_dir):
    scene = table3_scene
    out_dir = os.path.join(results_dir, "fig5")
    index, band, band_path, gt_path = benchmark.pedantic(
        _generate, args=(scene, out_dir), rounds=1, iterations=1,
        warmup_rounds=0)

    wavelength = scene.bands.centers_nm[index]
    present = np.unique(scene.ground_truth)
    text = (
        "Figure 5 — scene imagery (synthetic Indian-Pines-like scene)\n"
        "============================================================\n"
        f"(a) band {index} at {wavelength:.0f} nm -> {band_path}\n"
        + render_ascii(band, max_width=64, max_height=20)
        + f"\n\n(b) ground truth, {present.size} classes present -> "
        f"{gt_path}\n"
        + render_ascii(scene.ground_truth, max_width=64, max_height=20,
                       labels=True))
    report("fig5_imagery", text)

    # the selected band is within one channel spacing of 587 nm
    spacing = np.diff(scene.bands.centers_nm).max()
    assert abs(wavelength - 587.0) <= spacing
    # the band image has real dynamic range (not a dead channel)
    assert band.std() > 0.01 * band.mean()
    # the ground truth realizes (nearly) all 32 classes at this size
    assert present.size >= 28
    # the PGM/PPM files are structurally valid
    with open(band_path, "rb") as fh:
        assert fh.readline().strip() == b"P5"
    with open(gt_path, "rb") as fh:
        assert fh.readline().strip() == b"P6"
        dims = fh.readline().split()
        assert [int(dims[0]), int(dims[1])] == [scene.cube.samples,
                                                scene.cube.lines]
