"""Extension — CPU/GPU workload balancing (the paper's future work).

Paper §5: "In future research, we plan to study additional partitioning
strategies to balance the CPU and GPU workloads."  The chunked pipeline
makes that straightforward: give a line fraction f of the scene to the
CPU and 1-f to the GPU and run them concurrently; completion time is
max(t_cpu(f), t_gpu(1-f)).

This bench sweeps f with the calibrated platform models (P4/gcc +
7800 GTX, paper-size full scene) and reports the optimum — which lands
near the theoretical t_gpu/(t_cpu + t_gpu), i.e. only a few percent of
the work is worth giving to the CPU, quantifying why the paper left it
as future work.
"""

import pytest

from repro.bench import format_table, project_cpu_time, project_gpu_time
from repro.bench.scaling import PAPER_FULL_SCENE
from repro.cpu import GCC40, PENTIUM4_NORTHWOOD
from repro.gpu import GEFORCE_7800GTX

FRACTIONS = (0.0, 0.02, 0.05, 0.10, 0.20, 0.50)


def _sweep():
    lines, samples, bands = PAPER_FULL_SCENE
    results = []
    for f in FRACTIONS:
        cpu_lines = max(int(lines * f), 1) if f > 0 else 0
        gpu_lines = lines - cpu_lines
        t_cpu = 0.0 if cpu_lines == 0 else project_cpu_time(
            PENTIUM4_NORTHWOOD, GCC40, cpu_lines, samples, bands)["total_s"]
        t_gpu = 0.0 if gpu_lines == 0 else project_gpu_time(
            GEFORCE_7800GTX, gpu_lines, samples, bands).total_s
        results.append((f, t_cpu, t_gpu, max(t_cpu, t_gpu)))
    return results


def test_ablation_cpu_gpu_split(benchmark, report):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1,
                                 warmup_rounds=0)
    rows = [[f"{f:.0%}", t_cpu * 1e3, t_gpu * 1e3, total * 1e3]
            for f, t_cpu, t_gpu, total in results]
    best = min(results, key=lambda r: r[3])
    table = format_table(
        "Extension — CPU/GPU workload split (full scene, P4/gcc + "
        "7800 GTX)",
        ["CPU share", "CPU ms", "GPU ms", "completion ms"], rows)
    table += (f"\n\nbest split: {best[0]:.0%} of lines to the CPU "
              f"({best[3] * 1e3:.0f} ms vs "
              f"{results[0][3] * 1e3:.0f} ms GPU-only)")
    report("ablation_split", table)

    gpu_only = results[0][3]
    # A small CPU share helps a little...
    assert best[3] <= gpu_only
    assert best[0] <= 0.10
    # ...but a naive 50/50 split is catastrophic (the CPU is the
    # bottleneck by an order of magnitude).
    half = dict((f, total) for f, _, _, total in results)[0.50]
    assert half > 5.0 * gpu_only
