"""Durable serving — what crash-safety costs and what recovery buys.

Three questions, one artefact (``BENCH_recovery.json``):

* **Cost**: per-job price of the durable tier (journal appends with
  fsync, payload spill, disk write-through) against an identical
  non-durable sweep.  The durable tier is opt-in — ``state_dir=None``
  servers build none of it, so the historical serving path measured by
  ``bench_serving_throughput.py`` is untouched by the feature.
* **Recovery**: journal replay time against journal length, and the
  restart time of a server with completed history.
* **Payoff**: the warm disk-cache hit latency — a restarted server
  serving yesterday's result without a pipeline execution.

The correctness half (every replayed job terminal without
re-execution, digests identical across the restart, the resubmission
a pure disk hit) is asserted *inside* the measurement
(``tools.bench_record.measure_recovery``); this bench gates the
recorded shape.  Absolute numbers are host-dependent.
"""

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if REPO_ROOT not in sys.path:
    sys.path.insert(0, REPO_ROOT)

from repro.bench import format_table

from tools.bench_record import measure_recovery


def test_recovery(benchmark, report):
    record = benchmark.pedantic(measure_recovery, rounds=1, iterations=1,
                                warmup_rounds=0)

    rows = [
        ["durable cost / job", f"{record['durable_cost_per_job_ms']:.2f} ms",
         f"+{record['durable_overhead_pct']:.1f}% on 32³ jobs"],
        ["restart recovery", f"{record['restart_recovery_ms']:.2f} ms",
         f"{record['jobs']} completed jobs replayed"],
        ["disk-cache hit", f"{record['disk_cache_hit_ms']:.2f} ms",
         "post-restart resubmission"],
    ]
    for row in record["replay"]:
        rows.append([f"journal replay ({row['records']} rec)",
                     f"{row['replay_ms']:.2f} ms", "latest-state-wins"])
    report("recovery", format_table(
        "Durable serving: crash-safety cost and recovery timing",
        ["measurement", "time", "notes"], rows))

    # the durability contract, re-asserted on the recorded artefact
    assert record["recovered_without_reexecution"]
    assert record["digests_survive_restart"]
    # the durable tier prices one job in single-digit milliseconds of
    # fsync'd I/O, not in pipeline-execution time
    assert record["durable_cost_per_job_ms"] < 50.0
    # replay is a linear fold over the journal: 1000 records must be
    # read back in well under a second even on a slow disk
    assert max(row["replay_ms"] for row in record["replay"]) < 1000.0
    # a warm disk hit skips the pipeline: far cheaper than the ~10 ms
    # cold execution this cube costs
    assert record["disk_cache_hit_ms"] < 1000.0
