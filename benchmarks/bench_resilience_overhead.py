"""Resilience overhead — the fault-free fast path must be (near) free.

PR 3 threads retry loops, per-task deadlines and fault-injection probes
through the chunk dispatch engine.  None of that may tax a healthy run:
with no injector installed, the probe is a single ``None`` check per
chunk and the retry loop's first iteration is the only one taken.  This
bench measures the morphological stage serially with the resilience
machinery exercised (an explicit retry budget + deadline) against the
same stage driven through the raw backend — the pre-resilience
baseline — and records the relative overhead.  The acceptance target is
<= 1 % on the chunked path; the measurement (noisy on a busy host, so
the best-of-rounds pair is compared) is the recorded artefact.
"""

import time

import numpy as np

from repro.bench import format_table
from repro.core.mei import mei_reference
from repro.parallel import parallel_morphological_stage
from repro.resilience import RetryPolicy

LINES, SAMPLES, BANDS = 96, 32, 32
RADIUS = 1
ROUNDS = 5


def _best_of(func, rounds=ROUNDS):
    best = float("inf")
    value = None
    for _ in range(rounds):
        start = time.perf_counter()
        value = func()
        best = min(best, time.perf_counter() - start)
    return best, value


def _measure(cube):
    policy = RetryPolicy(max_retries=2, chunk_timeout_s=600.0)
    baseline_s, whole = _best_of(lambda: mei_reference(cube, RADIUS))
    chunked_s, chunked = _best_of(
        lambda: parallel_morphological_stage(
            cube, RADIUS, backend="reference", n_workers=1, n_chunks=8))
    guarded_s, guarded = _best_of(
        lambda: parallel_morphological_stage(
            cube, RADIUS, backend="reference", n_workers=1, n_chunks=8,
            policy=policy))
    return (baseline_s, chunked_s, guarded_s, whole, chunked, guarded)


def test_resilience_overhead(benchmark, report):
    cube = np.random.default_rng(42).uniform(
        0.05, 1.0, size=(LINES, SAMPLES, BANDS))
    baseline_s, chunked_s, guarded_s, whole, chunked, guarded = \
        benchmark.pedantic(_measure, args=(cube,), rounds=1,
                           iterations=1, warmup_rounds=0)

    overhead_pct = 100.0 * (guarded_s / chunked_s - 1.0)
    rows = [
        ["whole-image reference", f"{baseline_s * 1e3:.1f}", "—"],
        ["chunked, no policy", f"{chunked_s * 1e3:.1f}", "baseline"],
        ["chunked, retries+deadline", f"{guarded_s * 1e3:.1f}",
         f"{overhead_pct:+.2f}%"],
    ]
    report("resilience_overhead", format_table(
        f"Resilience overhead — morphological stage, "
        f"{LINES}x{SAMPLES}x{BANDS} cube, serial, 8 chunks "
        f"(best of {ROUNDS})",
        ["configuration", "wall ms", "vs chunked"], rows))

    # The guard rails change nothing about the results...
    np.testing.assert_array_equal(chunked[0], whole.mei)
    np.testing.assert_array_equal(guarded[0], whole.mei)
    np.testing.assert_array_equal(guarded[1], whole.erosion_index)
    np.testing.assert_array_equal(guarded[2], whole.dilation_index)
    # ...and cost (acceptance: <= 1 %; 3 % headroom for timer noise on
    # a loaded CI host — the recorded artefact carries the real number).
    assert overhead_pct <= 3.0
