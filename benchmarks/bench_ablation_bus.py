"""Ablation — bus generation and the transfer/compute balance.

One of the two headline differences between the paper's boards is the
bus (AGP 8x vs PCI Express, Table 1).  The paper stresses "the overheads
involved in data transfer between main memory and the GPU"; this bench
quantifies them: for each board, the projected full-scene time is split
into kernel vs bus components, and a counterfactual board (a 7800 GTX
forced onto AGP 8x) isolates the bus's own contribution.
"""

import pytest

from repro.bench import format_table, project_gpu_time
from repro.bench.scaling import PAPER_FULL_SCENE
from repro.gpu import AGP8X_BANDWIDTH, GEFORCE_7800GTX, GEFORCE_FX5950U


def _sweep():
    lines, samples, bands = PAPER_FULL_SCENE
    boards = (
        ("FX5950 (AGP 8x)", GEFORCE_FX5950U),
        ("7800 GTX (PCIe)", GEFORCE_7800GTX),
        ("7800 GTX on AGP 8x", GEFORCE_7800GTX.with_(
            bus_bandwidth=AGP8X_BANDWIDTH)),
    )
    return [(label, project_gpu_time(spec, lines, samples, bands))
            for label, spec in boards]


def test_ablation_bus(benchmark, report):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1,
                                 warmup_rounds=0)
    rows = []
    for label, b in results:
        rows.append([label, b.kernel_s * 1e3, b.transfer_s * 1e3,
                     b.total_s * 1e3,
                     100.0 * b.transfer_s / b.total_s])
    report("ablation_bus", format_table(
        "Ablation — bus generation, full 547 MB scene (modeled)",
        ["board", "kernel ms", "bus ms", "total ms", "bus share %"],
        rows))

    by_label = {label: b for label, b in results}
    pcie = by_label["7800 GTX (PCIe)"]
    agp = by_label["7800 GTX on AGP 8x"]
    fx = by_label["FX5950 (AGP 8x)"]
    # Same silicon, slower bus: kernels identical, transfers slower.
    assert agp.kernel_s == pytest.approx(pcie.kernel_s, rel=1e-12)
    assert agp.transfer_s > 1.5 * pcie.transfer_s
    # On the fast board the bus is a first-order cost (tens of percent)...
    assert 0.15 < pcie.transfer_s / pcie.total_s < 0.60
    # ...on the slow board the kernels dominate and the bus share shrinks.
    assert fx.transfer_s / fx.total_s < pcie.transfer_s / pcie.total_s
    # The counterfactual shows PCIe alone buys a measurable slice of the
    # generation-over-generation win.
    assert agp.total_s > 1.1 * pcie.total_s
