"""Ablation — band-group fusion width of the reduction kernels.

DESIGN.md calls out kernel fusion as the implementation choice that
moves the GPU pipeline from pass-overhead-bound to ALU-bound: a width-w
cross kernel binds 2w band-group textures (capped by the 16 texture
units) and folds their dot products in one pass, cutting both launch
count and intermediate render-target writes by ~w.

This bench runs the *actual simulator* at every width on the same cube
and reports launches, fragments, modeled time — and verifies the result
is bit-for-bit invariant while the cost falls monotonically.
"""

import numpy as np
import pytest

from repro.bench import format_table
from repro.core.amc_gpu import gpu_morphological_stage

WIDTHS = (1, 2, 3, 6)


def _sweep(cube):
    return {fuse: gpu_morphological_stage(cube, fuse_groups=fuse)
            for fuse in WIDTHS}


def test_ablation_fusion(benchmark, report):
    cube = np.random.default_rng(17).uniform(0.05, 1.0, size=(32, 32, 48))
    outs = benchmark.pedantic(_sweep, args=(cube,), rounds=1,
                              iterations=1, warmup_rounds=0)

    rows = []
    for fuse, out in outs.items():
        c = out.counters
        rows.append([fuse, int(c["kernel_launches"]),
                     c["fragments_shaded"] / 1e6,
                     c["kernel_time_s"] * 1e3,
                     out.modeled_time_s * 1e3])
    report("ablation_fusion", format_table(
        "Ablation — reduction-kernel fusion width (32x32x48 cube, "
        "7800 GTX)",
        ["width", "launches", "Mfragments", "kernel ms", "total ms"],
        rows))

    # Results identical at every width.
    base = outs[WIDTHS[0]]
    for fuse in WIDTHS[1:]:
        np.testing.assert_allclose(outs[fuse].mei, base.mei,
                                   rtol=1e-5, atol=1e-7)
    # Launches and modeled kernel time fall monotonically with width.
    launches = [outs[f].counters["kernel_launches"] for f in WIDTHS]
    times = [outs[f].counters["kernel_time_s"] for f in WIDTHS]
    assert launches == sorted(launches, reverse=True)
    assert times == sorted(times, reverse=True)
    # The full fusion is a substantial win, not a rounding effect.
    assert times[0] / times[-1] > 1.5
